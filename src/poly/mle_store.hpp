/**
 * @file
 * Storage backend for dense Fr evaluation tables (the MleStore seam).
 *
 * Every big prover table — MLE evaluation tables, fold scratch buffers,
 * opening quotients — lives in an FrTable, which picks one of two backends
 * at allocation time:
 *
 *   - Ram:    a plain std::vector<Fr>, exactly the pre-existing behavior.
 *   - Mapped: an unlinked temp-file slab mapped MAP_SHARED. Pages are
 *             file-backed, so under memory pressure (or an explicit
 *             releaseWindow) the kernel can write them back and reclaim —
 *             peak RSS for a streaming walk is O(chunk), not O(N).
 *
 * Routing is ambient: tables at or above the current stream threshold
 * (rt::Config::streamThreshold via ScopedConfig, else the ZKPHIRE_STREAM /
 * ZKPHIRE_STREAM_THRESHOLD environment defaults) go to the Mapped backend.
 * Values are bit-identical under either backend — the backend only decides
 * where the bytes live, never what they are.
 *
 * A BufferArena recycles tables across proofs (fold scratch, opening
 * quotients): engine::ProverContext owns one, prover entry points install
 * it with ScopedArena, and allocation sites use arenaAcquire/arenaRelease.
 * StoreCounters tracks allocations so the reuse is measurable.
 */
#ifndef ZKPHIRE_POLY_MLE_STORE_HPP
#define ZKPHIRE_POLY_MLE_STORE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "ff/fr.hpp"

namespace zkphire::poly {

using ff::Fr;

static_assert(std::is_trivially_copyable_v<Fr>,
              "FrTable maps raw slabs; Fr must be trivially copyable");

/** Which backend holds a table's bytes. */
enum class StoreKind : std::uint8_t {
    Ram,   ///< std::vector<Fr>
    Mapped ///< mmap'd unlinked temp file (falls back to Ram off-Linux)
};

/** Ambient streaming policy (resolved from ScopedConfig overrides / env). */
struct StorePolicy {
    /** Tables of >= this many elements allocate Mapped. SIZE_MAX = never. */
    std::size_t thresholdElems = SIZE_MAX;
    /** Elements per chunk for streaming walks (commit, eq build). */
    std::size_t chunkElems = std::size_t(1) << 20;
};

/** Policy for the current thread: rt::Config stream overrides when set,
 *  else the ZKPHIRE_STREAM* environment defaults. */
StorePolicy currentStorePolicy();

/** Directory streaming slabs are created in (ZKPHIRE_STREAM_DIR, TMPDIR,
 *  /tmp — first set wins). */
const char *streamDir();

/** Process-wide allocation counters (monotonic; snapshot-and-subtract). */
struct StoreCounters {
    std::uint64_t ramAllocs = 0;
    std::uint64_t ramBytes = 0;
    std::uint64_t mappedAllocs = 0;
    std::uint64_t mappedBytes = 0;
    std::uint64_t arenaHits = 0;
    std::uint64_t arenaMisses = 0;
};
StoreCounters storeCounters();

/**
 * A dense table of Fr values behind the Ram/Mapped backend seam.
 * Move-only-cheap (moves steal the backing), copyable (deep copy, same
 * backend). resize preserves the prefix and zero-fills growth, matching
 * std::vector semantics; on the Mapped backend a shrink additionally
 * releases the tail pages (madvise(MADV_DONTNEED)), which is what keeps
 * the sumcheck fold chain's RSS proportional to the live half.
 */
class FrTable
{
  public:
    FrTable() = default;
    ~FrTable();
    FrTable(FrTable &&o) noexcept { moveFrom(o); }
    FrTable &operator=(FrTable &&o) noexcept;
    FrTable(const FrTable &o);
    FrTable &operator=(const FrTable &o);

    /** n zero elements on the backend the ambient policy picks. */
    static FrTable make(std::size_t n);
    /** n zero elements on an explicit backend. */
    static FrTable make(std::size_t n, StoreKind kind);
    /** Adopt an existing vector (Ram backend, no copy). */
    static FrTable adopt(std::vector<Fr> v);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    /** Allocated elements the table can grow to without reallocating. */
    std::size_t capacity() const;
    StoreKind kind() const
    {
        return map_ != nullptr ? StoreKind::Mapped : StoreKind::Ram;
    }
    bool isMapped() const { return map_ != nullptr; }

    Fr *data() { return ptr_; }
    const Fr *data() const { return ptr_; }
    Fr &operator[](std::size_t i) { return ptr_[i]; }
    const Fr &operator[](std::size_t i) const { return ptr_[i]; }
    Fr *begin() { return ptr_; }
    Fr *end() { return ptr_ + size_; }
    const Fr *begin() const { return ptr_; }
    const Fr *end() const { return ptr_ + size_; }

    operator std::span<const Fr>() const { return {ptr_, size_}; }
    operator std::span<Fr>() { return {ptr_, size_}; }
    std::span<const Fr> span() const { return {ptr_, size_}; }

    /** Keep [0, min(old,n)), zero-fill growth, release Mapped tail pages
     *  on shrink. Grows in place when capacity allows (Mapped uses mremap
     *  past capacity, so spans/pointers are invalidated by growth). */
    void resize(std::size_t n);
    /** resize(src.size()) + copy — reuses the existing backing. */
    void assign(std::span<const Fr> src);
    void swap(FrTable &o) noexcept;
    /** Drop the backing entirely (munmap / free). */
    void clear();

    /** Hint a front-to-back walk (madvise(MADV_SEQUENTIAL); Mapped only). */
    void adviseSequential() const;
    /** Drop the pages of [beginElem, endElem) from RSS (Mapped only; range
     *  is shrunk inward to whole pages). The data survives in the backing
     *  file — a later access faults it back in. */
    void releaseWindow(std::size_t beginElem, std::size_t endElem) const;

    bool operator==(const FrTable &o) const;

  private:
    void moveFrom(FrTable &o) noexcept;
    void allocMapped(std::size_t n);
    void growMapped(std::size_t n);

    Fr *ptr_ = nullptr;
    std::size_t size_ = 0;
    std::vector<Fr> vec_;         // Ram backing (ptr_ aliases vec_.data())
    void *map_ = nullptr;         // Mapped backing
    std::size_t mapBytes_ = 0;    // mmap'd length (bytes, page-rounded)
    int fd_ = -1;                 // backing file (already unlinked)
};

/**
 * Free-list of FrTables recycled across proofs, keyed by capacity.
 * Thread-safe: concurrent service lanes share the context's arena.
 */
class BufferArena
{
  public:
    BufferArena() = default;
    BufferArena(const BufferArena &) = delete;
    BufferArena &operator=(const BufferArena &) = delete;

    /** Smallest free table with capacity >= n, resized to n; a fresh
     *  policy-routed allocation when none fits. */
    FrTable acquire(std::size_t n);
    /** Return a table to the free list (empty tables are dropped). */
    void release(FrTable &&t);
    /** Drop every pooled table. */
    void clear();
    std::size_t pooled() const;

  private:
    mutable std::mutex arenaMu; // leaf lock: nothing is acquired under it
    std::vector<FrTable> free_;
};

/** RAII installation of an arena as the current thread's ambient arena.
 *  Null inherits the enclosing installation (rt::ScopedConfig's rule). */
class ScopedArena
{
  public:
    explicit ScopedArena(BufferArena *a);
    ~ScopedArena();
    ScopedArena(const ScopedArena &) = delete;
    ScopedArena &operator=(const ScopedArena &) = delete;

  private:
    BufferArena *saved;
};

/** acquire from the ambient arena, or a fresh policy-routed table. */
FrTable arenaAcquire(std::size_t n);
/** release to the ambient arena, or drop. */
void arenaRelease(FrTable &&t);

} // namespace zkphire::poly

#endif // ZKPHIRE_POLY_MLE_STORE_HPP
