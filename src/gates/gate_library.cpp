#include "gates/gate_library.hpp"

#include <cassert>
#include <map>
#include <mutex>
#include <stdexcept>

#include "poly/sym_poly.hpp"

namespace zkphire::gates {

using poly::GateExpr;
using poly::Mle;
using poly::SlotId;
using poly::SymPoly;

std::vector<Mle>
Gate::randomTables(unsigned num_vars, ff::Rng &rng) const
{
    std::vector<Mle> tables;
    tables.reserve(roles.size());
    for (SlotRole role : roles) {
        switch (role) {
          case SlotRole::Selector:
            tables.push_back(Mle::randomSparse(num_vars, rng, 0.5, 0.5));
            break;
          case SlotRole::Witness:
            tables.push_back(Mle::randomSparse(num_vars, rng, 0.6, 0.3));
            break;
          case SlotRole::Dense:
            tables.push_back(Mle::random(num_vars, rng));
            break;
        }
    }
    return tables;
}

namespace {

/** Builder state shared by the per-row constructors. */
struct GateBuilder {
    Gate gate;

    explicit GateBuilder(int id, std::string name)
    {
        gate.id = id;
        gate.name = name;
        gate.expr = GateExpr(std::move(name));
    }

    /** Register slot with role; return its symbolic variable. */
    SymPoly
    slot(const std::string &name, SlotRole role)
    {
        SlotId s = gate.expr.addSlot(name);
        gate.roles.push_back(role);
        return SymPoly::var(s);
    }

    Gate
    finish(const SymPoly &p)
    {
        p.addTo(gate.expr);
        assert(gate.expr.numTerms() > 0);
        return std::move(gate);
    }
};

SymPoly
c(std::int64_t v)
{
    return SymPoly::constant(v);
}

/** Rows 3-5 share the curve bracket y^2 - x^3 - 5. */
SymPoly
curveBracket(const SymPoly &x, const SymPoly &y)
{
    return y * y - x * x * x - c(5);
}

/** Append the f_r masking factor to a core gate (rows 20/22 from cores). */
Gate
withMaskingFactor(Gate core, int id, const char *name)
{
    Gate out;
    out.id = id;
    out.name = name;
    out.expr = core.expr.multipliedBySlot("f_r", nullptr);
    out.roles = std::move(core.roles);
    out.roles.push_back(SlotRole::Dense);
    return out;
}

} // namespace

Gate
vanillaCoreGate()
{
    GateBuilder b(-1, "Vanilla gate");
    auto qL = b.slot("qL", SlotRole::Selector);
    auto qR = b.slot("qR", SlotRole::Selector);
    auto qM = b.slot("qM", SlotRole::Selector);
    auto qO = b.slot("qO", SlotRole::Selector);
    auto qC = b.slot("qC", SlotRole::Witness);
    auto w1 = b.slot("w1", SlotRole::Witness);
    auto w2 = b.slot("w2", SlotRole::Witness);
    auto w3 = b.slot("w3", SlotRole::Witness);
    return b.finish(qL * w1 + qR * w2 + qM * w1 * w2 - qO * w3 + qC);
}

Gate
jellyfishCoreGate()
{
    GateBuilder b(-1, "Jellyfish gate");
    auto q1 = b.slot("q1", SlotRole::Selector);
    auto q2 = b.slot("q2", SlotRole::Selector);
    auto q3 = b.slot("q3", SlotRole::Selector);
    auto q4 = b.slot("q4", SlotRole::Selector);
    auto qM1 = b.slot("qM1", SlotRole::Selector);
    auto qM2 = b.slot("qM2", SlotRole::Selector);
    auto qH1 = b.slot("qH1", SlotRole::Selector);
    auto qH2 = b.slot("qH2", SlotRole::Selector);
    auto qH3 = b.slot("qH3", SlotRole::Selector);
    auto qH4 = b.slot("qH4", SlotRole::Selector);
    auto qO = b.slot("qO", SlotRole::Selector);
    auto qecc = b.slot("qecc", SlotRole::Selector);
    auto qC = b.slot("qC", SlotRole::Witness);
    auto w1 = b.slot("w1", SlotRole::Witness);
    auto w2 = b.slot("w2", SlotRole::Witness);
    auto w3 = b.slot("w3", SlotRole::Witness);
    auto w4 = b.slot("w4", SlotRole::Witness);
    auto w5 = b.slot("w5", SlotRole::Witness);
    return b.finish(q1 * w1 + q2 * w2 + q3 * w3 + q4 * w4 + qM1 * w1 * w2 +
                    qM2 * w3 * w4 + qH1 * w1.pow(5) + qH2 * w2.pow(5) +
                    qH3 * w3.pow(5) + qH4 * w4.pow(5) - qO * w5 +
                    qecc * w1 * w2 * w3 * w4 + qC);
}

Gate
permCoreGate(unsigned num_witnesses, const Fr &alpha)
{
    GateBuilder b(-1, "PermCheck core k=" + std::to_string(num_witnesses));
    auto pi = b.slot("pi", SlotRole::Dense);
    auto p1 = b.slot("p1", SlotRole::Dense);
    auto p2 = b.slot("p2", SlotRole::Dense);
    auto phi = b.slot("phi", SlotRole::Dense);
    SymPoly prod_d = SymPoly::constant(Fr::one());
    SymPoly prod_n = SymPoly::constant(Fr::one());
    for (unsigned j = 1; j <= num_witnesses; ++j)
        prod_d = prod_d * b.slot("D" + std::to_string(j), SlotRole::Dense);
    for (unsigned j = 1; j <= num_witnesses; ++j)
        prod_n = prod_n * b.slot("N" + std::to_string(j), SlotRole::Dense);
    SymPoly a = SymPoly::constant(alpha);
    return b.finish(pi - p1 * p2 + a * (phi * prod_d - prod_n));
}

namespace {

Gate
makeVanillaZeroCheck()
{
    return withMaskingFactor(vanillaCoreGate(), 20, "Vanilla ZeroCheck");
}

Gate
makeJellyfishZeroCheck()
{
    return withMaskingFactor(jellyfishCoreGate(), 22, "Jellyfish ZeroCheck");
}

Gate
makePermCheck(int id, const char *name, unsigned num_witnesses,
              const Fr &alpha)
{
    return withMaskingFactor(permCoreGate(num_witnesses, alpha), id, name);
}

Gate
makeOpenCheck()
{
    GateBuilder b(24, "OpenCheck");
    std::vector<SymPoly> ys, frs;
    for (int i = 1; i <= 6; ++i)
        ys.push_back(b.slot("y" + std::to_string(i), SlotRole::Witness));
    for (int i = 1; i <= 6; ++i)
        frs.push_back(b.slot("f_r" + std::to_string(i), SlotRole::Dense));
    SymPoly sum;
    for (int i = 0; i < 6; ++i)
        sum = sum + ys[i] * frs[i];
    return b.finish(sum);
}

} // namespace

namespace {

/** Canonical structural encoding: slot count plus every term's coefficient
 *  and factor slot *ids* (slot names can repeat, so toString() would let
 *  structurally different expressions collide onto one cached plan). */
std::string
structuralKey(const poly::GateExpr &expr)
{
    std::string key = std::to_string(expr.numSlots());
    for (const poly::Term &t : expr.terms()) {
        key += '|';
        key += t.coeff.toHexString();
        for (poly::SlotId f : t.factors) {
            key += ',';
            key += std::to_string(f);
        }
    }
    return key;
}

} // namespace

std::shared_ptr<const poly::GatePlan>
PlanCache::byKey(const std::string &key, const poly::GateExpr &expr)
{
    // Lowering under the lock keeps the invariant "one compiled plan per
    // structure"; plans are small and compilation is cheap relative to a
    // single SumCheck round, so contention is not a concern.
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(key);
    if (it != entries.end())
        return it->second;
    auto plan = std::make_shared<const poly::GatePlan>(
        poly::GatePlan::compile(expr));
    entries.emplace(key, plan);
    return plan;
}

std::shared_ptr<const poly::GatePlan>
PlanCache::plan(const poly::GateExpr &expr)
{
    return byKey(structuralKey(expr), expr);
}

std::shared_ptr<const poly::GatePlan>
PlanCache::maskedPlan(const poly::GateExpr &expr)
{
    const std::string key = structuralKey(expr) + "*f_r";
    poly::GateExpr masked = expr.multipliedBySlot("f_r", nullptr);
    return byKey(key, masked);
}

std::size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
}

Gate
tableIGate(int id, const Fr &alpha)
{
    switch (id) {
      case 0: {
        GateBuilder b(0, "Verifiable ASICs");
        auto qadd = b.slot("qadd", SlotRole::Selector);
        auto qmul = b.slot("qmul", SlotRole::Selector);
        auto a = b.slot("a", SlotRole::Witness);
        auto bb = b.slot("b", SlotRole::Witness);
        return b.finish(qadd * (a + bb) + qmul * (a * bb));
      }
      case 1: {
        GateBuilder b(1, "Spartan 1");
        auto A = b.slot("A", SlotRole::Witness);
        auto B = b.slot("B", SlotRole::Witness);
        auto C = b.slot("C", SlotRole::Witness);
        auto ftau = b.slot("f_tau", SlotRole::Dense);
        return b.finish((A * B - C) * ftau);
      }
      case 2: {
        GateBuilder b(2, "Spartan 2");
        auto s = b.slot("SumABC", SlotRole::Dense);
        auto z = b.slot("Z", SlotRole::Witness);
        return b.finish(s * z);
      }
      case 3: {
        GateBuilder b(3, "Nonzero Point Check");
        auto q = b.slot("q_nonid_point", SlotRole::Selector);
        auto x = b.slot("x", SlotRole::Witness);
        auto y = b.slot("y", SlotRole::Witness);
        return b.finish(q * curveBracket(x, y));
      }
      case 4: {
        GateBuilder b(4, "x-gated Curve Check");
        auto q = b.slot("q_point", SlotRole::Selector);
        auto x = b.slot("x", SlotRole::Witness);
        auto y = b.slot("y", SlotRole::Witness);
        return b.finish((q * x) * curveBracket(x, y));
      }
      case 5: {
        GateBuilder b(5, "y-gated Curve Check");
        auto q = b.slot("q_point", SlotRole::Selector);
        auto x = b.slot("x", SlotRole::Witness);
        auto y = b.slot("y", SlotRole::Witness);
        return b.finish((q * y) * curveBracket(x, y));
      }
      case 6: {
        GateBuilder b(6, "Incomplete Addition 1");
        auto q = b.slot("q_add_inc", SlotRole::Selector);
        auto xr = b.slot("x_r", SlotRole::Witness);
        auto xq = b.slot("x_q", SlotRole::Witness);
        auto xp = b.slot("x_p", SlotRole::Witness);
        auto yp = b.slot("y_p", SlotRole::Witness);
        auto yq = b.slot("y_q", SlotRole::Witness);
        return b.finish(q * ((xr + xq + xp) * (xp - xq).pow(2) -
                             (yp - yq).pow(2)));
      }
      case 7: {
        GateBuilder b(7, "Incomplete Addition 2");
        auto q = b.slot("q_add_inc", SlotRole::Selector);
        auto yr = b.slot("y_r", SlotRole::Witness);
        auto yq = b.slot("y_q", SlotRole::Witness);
        auto xp = b.slot("x_p", SlotRole::Witness);
        auto xq = b.slot("x_q", SlotRole::Witness);
        auto yp = b.slot("y_p", SlotRole::Witness);
        auto xr = b.slot("x_r", SlotRole::Witness);
        return b.finish(q * ((yr + yq) * (xp - xq) -
                             (yp - yq) * (xq - xr)));
      }
      case 8: {
        GateBuilder b(8, "Complete Addition 1");
        auto q = b.slot("q_add", SlotRole::Selector);
        auto xq = b.slot("x_q", SlotRole::Witness);
        auto xp = b.slot("x_p", SlotRole::Witness);
        auto lam = b.slot("lambda", SlotRole::Witness);
        auto yq = b.slot("y_q", SlotRole::Witness);
        auto yp = b.slot("y_p", SlotRole::Witness);
        return b.finish(q * (xq - xp) * ((xq - xp) * lam - (yq - yp)));
      }
      case 9: {
        GateBuilder b(9, "Complete Addition 2");
        auto q = b.slot("q_add", SlotRole::Selector);
        auto xq = b.slot("x_q", SlotRole::Witness);
        auto xp = b.slot("x_p", SlotRole::Witness);
        auto al = b.slot("alpha", SlotRole::Witness);
        auto yp = b.slot("y_p", SlotRole::Witness);
        auto lam = b.slot("lambda", SlotRole::Witness);
        return b.finish(q * (c(1) - (xq - xp) * al) *
                        (c(2) * yp * lam - c(3) * xp * xp));
      }
      case 10: case 11: case 12: case 13: {
        static const char *names[] = {
            "Complete Addition 3", "Complete Addition 4",
            "Complete Addition 5", "Complete Addition 6"};
        GateBuilder b(id, names[id - 10]);
        auto q = b.slot("q_add", SlotRole::Selector);
        auto xp = b.slot("x_p", SlotRole::Witness);
        auto xq = b.slot("x_q", SlotRole::Witness);
        auto yp = b.slot("y_p", SlotRole::Witness);
        auto yq = b.slot("y_q", SlotRole::Witness);
        auto xr = b.slot("x_r", SlotRole::Witness);
        auto yr = b.slot("y_r", SlotRole::Witness);
        auto lam = b.slot("lambda", SlotRole::Witness);
        // Gating factor: rows 10/11 use (x_q - x_p), rows 12/13 (y_q + y_p).
        SymPoly gatef = (id <= 11) ? (xq - xp) : (yq + yp);
        // Bracket: even rows lambda^2 - xp - xq - xr, odd rows
        // lambda(xp - xr) - yp - yr.
        SymPoly bracket = (id % 2 == 0)
                              ? (lam * lam - xp - xq - xr)
                              : (lam * (xp - xr) - yp - yr);
        return b.finish(q * xp * xq * gatef * bracket);
      }
      case 14: case 15: case 16: case 17: {
        static const char *names[] = {
            "Complete Addition 7", "Complete Addition 8",
            "Complete Addition 9", "Complete Addition 10"};
        GateBuilder b(id, names[id - 14]);
        auto q = b.slot("q_add", SlotRole::Selector);
        auto xp = b.slot("x_p", SlotRole::Witness);
        auto xq = b.slot("x_q", SlotRole::Witness);
        auto xr = b.slot("x_r", SlotRole::Witness);
        auto yp = b.slot("y_p", SlotRole::Witness);
        auto yq = b.slot("y_q", SlotRole::Witness);
        auto yr = b.slot("y_r", SlotRole::Witness);
        // Rows 14/15 gate on (1 - x_p*beta); 16/17 on (1 - x_q*gamma).
        auto inv = b.slot(id <= 15 ? "beta" : "gamma", SlotRole::Witness);
        SymPoly gatef = (id <= 15) ? (c(1) - xp * inv) : (c(1) - xq * inv);
        SymPoly diff;
        switch (id) {
          case 14: diff = xr - xq; break;
          case 15: diff = yr - yq; break;
          case 16: diff = xr - xp; break;
          default: diff = yr - yp; break;
        }
        return b.finish(q * gatef * diff);
      }
      case 18: case 19: {
        GateBuilder b(id, id == 18 ? "Complete Addition 11"
                                   : "Complete Addition 12");
        auto q = b.slot("q_add", SlotRole::Selector);
        auto xq = b.slot("x_q", SlotRole::Witness);
        auto xp = b.slot("x_p", SlotRole::Witness);
        auto al = b.slot("alpha", SlotRole::Witness);
        auto yq = b.slot("y_q", SlotRole::Witness);
        auto yp = b.slot("y_p", SlotRole::Witness);
        auto de = b.slot("delta", SlotRole::Witness);
        auto out = b.slot(id == 18 ? "x_r" : "y_r", SlotRole::Witness);
        return b.finish(
            q * (c(1) - (xq - xp) * al - (yq + yp) * de) * out);
      }
      case 20:
        return makeVanillaZeroCheck();
      case 21:
        return makePermCheck(21, "Vanilla PermCheck", 3, alpha);
      case 22:
        return makeJellyfishZeroCheck();
      case 23:
        return makePermCheck(23, "Jellyfish PermCheck", 5, alpha);
      case 24:
        return makeOpenCheck();
      default:
        throw std::out_of_range("Table I gate id must be 0-24");
    }
}

std::vector<Gate>
tableIGates(const Fr &alpha)
{
    std::vector<Gate> gates;
    gates.reserve(25);
    for (int id = 0; id < 25; ++id)
        gates.push_back(tableIGate(id, alpha));
    return gates;
}

std::vector<Gate>
trainingSetGates()
{
    std::vector<Gate> gates;
    gates.reserve(20);
    for (int id = 0; id < 20; ++id)
        gates.push_back(tableIGate(id));
    return gates;
}

Gate
sweepGate(unsigned d)
{
    assert(d >= 2);
    GateBuilder b(-1, "sweep-d" + std::to_string(d));
    auto q1 = b.slot("q1", SlotRole::Selector);
    auto q2 = b.slot("q2", SlotRole::Selector);
    auto q3 = b.slot("q3", SlotRole::Selector);
    auto qc = b.slot("qc", SlotRole::Witness);
    auto w1 = b.slot("w1", SlotRole::Witness);
    auto w2 = b.slot("w2", SlotRole::Witness);
    return b.finish(q1 * w1 + q2 * w2 + q3 * w1.pow(d - 1) * w2 + qc);
}

} // namespace zkphire::gates
