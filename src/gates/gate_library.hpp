/**
 * @file
 * The paper's Table I: the 25 polynomial constraints used to evaluate the
 * programmable SumCheck unit, plus the parametric high-degree sweep family
 * of §VI-A2 / §VI-B5.
 *
 * Each Gate carries the expanded GateExpr, a per-slot role (selector /
 * witness / dense) that drives both sparse test-table generation and the
 * hardware traffic model, and helpers to synthesize random workloads with
 * the sparsity statistics the paper assumes (selectors binary, witnesses
 * ~90% in {0,1}, auxiliary polynomials dense).
 */
#ifndef ZKPHIRE_GATES_GATE_LIBRARY_HPP
#define ZKPHIRE_GATES_GATE_LIBRARY_HPP

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ff/rng.hpp"
#include "poly/gate_expr.hpp"
#include "poly/gate_plan.hpp"
#include "poly/mle.hpp"

namespace zkphire::gates {

using ff::Fr;

/** Storage/sparsity class of a constituent MLE (paper §IV-B1). */
enum class SlotRole {
    Selector, // enable MLEs q_i: binary (0/1)
    Witness,  // witness/constant MLEs: ~90% of entries in {0,1}
    Dense,    // f_r, eq, N/D/phi/pi/p1/p2: full 255-bit entries
};

/** A Table I row (or sweep-family member) ready for SumCheck. */
struct Gate {
    int id = -1;       ///< Table I ID (0-24); -1 for sweep-family gates.
    std::string name;
    poly::GateExpr expr;
    std::vector<SlotRole> roles; ///< One role per expression slot.

    /** Composite degree (max term factor count). */
    std::size_t degree() const { return expr.degree(); }

    /**
     * Generate random tables honoring slot roles: selectors uniform binary,
     * witnesses 60% zero / 30% one / 10% dense (≈90% sparse, per the paper's
     * workload statistics), dense slots uniform field elements.
     */
    std::vector<poly::Mle> randomTables(unsigned num_vars, ff::Rng &rng) const;
};

/**
 * Build Table I gate by id (0-24).
 *
 * @param alpha The scalar batching challenge in the PermCheck rows (21, 23);
 *              a fixed nonzero default is fine for benchmarking.
 */
Gate tableIGate(int id, const Fr &alpha = Fr::fromU64(7));

/** All 25 Table I gates in id order. */
std::vector<Gate> tableIGates(const Fr &alpha = Fr::fromU64(7));

/** Table I rows 0-19: the Fig. 6 "training set". */
std::vector<Gate> trainingSetGates();

/**
 * The Vanilla Plonk gate constraint WITHOUT the ZeroCheck masking factor:
 * qL*w1 + qR*w2 + qM*w1*w2 - qO*w3 + qC. Slot order: qL qR qM qO qC w1 w2 w3
 * (selectors first, then witness columns) — the order the HyperPlonk
 * circuit layer binds tables in. Row 20 is this expression times f_r.
 */
Gate vanillaCoreGate();

/** The Jellyfish gate constraint without f_r (13 selectors, 5 witnesses). */
Gate jellyfishCoreGate();

/**
 * The PermCheck constraint without f_r, for num_witnesses columns:
 * pi - p1*p2 + alpha*(phi*D_1..D_k - N_1..N_k), slot order
 * [pi, p1, p2, phi, D_1..D_k, N_1..N_k]. Rows 21/23 are this times f_r.
 */
Gate permCoreGate(unsigned num_witnesses, const Fr &alpha);

/**
 * A cache of compiled GatePlans, keyed by full expression structure
 * (coefficients and factor slot ids). Thread-safe by construction: lookups
 * and inserts are serialized on an instance mutex, and entries are
 * immutable shared_ptr<const GatePlan>. There is deliberately NO
 * process-global instance — each engine::ProverContext owns one, so two
 * contexts proving concurrently can never share or race on plan state.
 *
 * Intended for the fixed library gates the HyperPlonk prover evaluates on
 * every proof — do NOT feed it expressions embedding per-proof challenges
 * (e.g. permCoreGate's alpha), which would grow the cache without bound;
 * compile those inline instead (lowering is cheap relative to one SumCheck
 * round).
 */
class PlanCache
{
  public:
    /** Compiled plan for expr itself, lowered on first request. */
    std::shared_ptr<const poly::GatePlan> plan(const poly::GateExpr &expr);

    /**
     * Cached plan for the ZeroCheck composition expr * f_r (one masking
     * slot appended to every term) — the shape sumcheck::proveZero
     * actually runs.
     */
    std::shared_ptr<const poly::GatePlan>
    maskedPlan(const poly::GateExpr &expr);

    /** Number of compiled plans held. */
    std::size_t size() const;

  private:
    std::shared_ptr<const poly::GatePlan>
    byKey(const std::string &key, const poly::GateExpr &expr);

    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<const poly::GatePlan>> entries;
};

/**
 * The high-degree sweep family (paper §VI-A2):
 * f = q1*w1 + q2*w2 + q3*w1^(d-1)*w2 + qc, parameterized by the witness
 * degree d >= 2. The dominant term has d+1 factor occurrences, so its
 * composite degree is d+1.
 */
Gate sweepGate(unsigned d);

} // namespace zkphire::gates

#endif // ZKPHIRE_GATES_GATE_LIBRARY_HPP
