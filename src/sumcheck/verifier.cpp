#include "sumcheck/verifier.hpp"

namespace zkphire::sumcheck {

RoundCheckResult
verifyRounds(const SumcheckProof &proof, unsigned num_vars, std::size_t degree,
             hash::Transcript &tr, const std::optional<Fr> &expected_sum)
{
    RoundCheckResult res;
    if (proof.roundEvals.size() != num_vars) {
        res.error = "wrong number of rounds";
        return res;
    }
    if (expected_sum && proof.claimedSum != *expected_sum) {
        res.error = "claimed sum does not match expected value";
        return res;
    }

    tr.appendU64("sc/num_vars", num_vars);
    tr.appendU64("sc/degree", degree);

    Fr claim = proof.claimedSum;
    for (unsigned round = 0; round < num_vars; ++round) {
        const auto &evals = proof.roundEvals[round];
        if (evals.size() != degree + 1) {
            res.error = "round " + std::to_string(round) +
                        ": wrong evaluation count";
            return res;
        }
        if (round == 0)
            tr.appendFr("sc/claim", proof.claimedSum);
        if (evals[0] + evals[1] != claim) {
            res.error = "round " + std::to_string(round) +
                        ": s(0)+s(1) != running claim";
            return res;
        }
        tr.appendFrVec("sc/round", evals);
        Fr r = tr.challengeFr("sc/challenge");
        res.challenges.push_back(r);
        claim = evalUnivariate(evals, r);
    }
    tr.appendFrVec("sc/final_evals", proof.finalSlotEvals);

    res.finalClaim = claim;
    res.ok = true;
    return res;
}

RoundCheckResult
verify(const poly::GateExpr &expr, const SumcheckProof &proof,
       unsigned num_vars, hash::Transcript &tr,
       const std::optional<Fr> &expected_sum)
{
    RoundCheckResult res =
        verifyRounds(proof, num_vars, expr.degree(), tr, expected_sum);
    if (!res.ok)
        return res;
    if (proof.finalSlotEvals.size() != expr.numSlots()) {
        res.ok = false;
        res.error = "wrong number of final slot evaluations";
        return res;
    }
    if (expr.evaluate(proof.finalSlotEvals) != res.finalClaim) {
        res.ok = false;
        res.error = "final evaluation check failed";
        return res;
    }
    return res;
}

} // namespace zkphire::sumcheck
