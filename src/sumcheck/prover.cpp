#include "sumcheck/prover.hpp"

#include <cassert>

#include "rt/parallel.hpp"

namespace zkphire::sumcheck {

using poly::GateExpr;
using poly::Mle;
using poly::SlotId;
using poly::Term;
using poly::VirtualPoly;

std::size_t
SumcheckProof::sizeBytes() const
{
    std::size_t elems = 1; // claimedSum
    for (const auto &r : roundEvals)
        elems += r.size();
    elems += finalSlotEvals.size();
    return elems * ff::kFrBytes;
}

namespace {

/**
 * Accumulate this round's s_i evaluations over pair indices [begin, end).
 *
 * For each pair, every referenced slot's (lo, hi) entries are extended to
 * X = 0..D by repeated addition of (hi - lo); term products are then formed
 * at every evaluation point and accumulated.
 */
void
accumulateRange(const VirtualPoly &vp, std::size_t begin, std::size_t end,
                std::size_t degree, std::vector<Fr> &acc)
{
    const GateExpr &expr = vp.expr();
    const std::size_t num_slots = vp.numSlots();
    const std::size_t num_points = degree + 1;

    // ext[s * num_points + e] = slot s extended to X = e.
    std::vector<Fr> ext(num_slots * num_points);
    std::vector<bool> used(num_slots, false);
    for (SlotId s : expr.referencedSlots())
        used[s] = true;

    for (std::size_t j = begin; j < end; ++j) {
        for (std::size_t s = 0; s < num_slots; ++s) {
            if (!used[s])
                continue;
            const Mle &tbl = vp.table(SlotId(s));
            Fr lo = tbl[2 * j];
            Fr hi = tbl[2 * j + 1];
            Fr diff = hi - lo;
            Fr *e = &ext[s * num_points];
            e[0] = lo;
            for (std::size_t p = 1; p < num_points; ++p)
                e[p] = e[p - 1] + diff;
        }
        for (const Term &t : expr.terms()) {
            for (std::size_t p = 0; p < num_points; ++p) {
                Fr prod = t.coeff;
                for (SlotId f : t.factors)
                    prod *= ext[f * num_points + p];
                acc[p] += prod;
            }
        }
    }
}

/**
 * Compute one round's evaluations via rt::parallelReduce over pair indices.
 * Field addition is exact, so per-chunk accumulators summed in chunk order
 * give the bit-identical result of the serial loop at any thread count.
 */
std::vector<Fr>
roundEvaluations(const VirtualPoly &vp, std::size_t degree)
{
    const std::size_t half = std::size_t(1) << (vp.numVars() - 1);
    const std::size_t num_points = degree + 1;
    if (rt::currentThreads() <= 1 || half < 1024) {
        std::vector<Fr> acc(num_points, Fr::zero());
        accumulateRange(vp, 0, half, degree, acc);
        return acc;
    }
    return rt::parallelReduce<std::vector<Fr>>(
        0, half, std::vector<Fr>(num_points, Fr::zero()),
        [&](std::size_t b, std::size_t e) {
            std::vector<Fr> part(num_points, Fr::zero());
            accumulateRange(vp, b, e, degree, part);
            return part;
        },
        [&](std::vector<Fr> acc, std::vector<Fr> part) {
            for (std::size_t p = 0; p < num_points; ++p)
                acc[p] += part[p];
            return acc;
        },
        /*grain=*/0, /*minGrain=*/256);
}

} // namespace

ProverOutput
prove(VirtualPoly poly, hash::Transcript &tr, unsigned threads)
{
    const unsigned mu = poly.numVars();
    const std::size_t degree = poly.expr().degree();
    assert(mu > 0 && degree > 0);

    // threads == 0 inherits the runtime default (ZKPHIRE_THREADS / cores);
    // an explicit value caps both the round evaluations and the MLE folds.
    rt::ScopedThreads scope(threads);

    ProverOutput out;
    out.proof.roundEvals.reserve(mu);
    out.challenges.reserve(mu);

    tr.appendU64("sc/num_vars", mu);
    tr.appendU64("sc/degree", degree);

    for (unsigned round = 0; round < mu; ++round) {
        std::vector<Fr> evals = roundEvaluations(poly, degree);
        if (round == 0) {
            out.proof.claimedSum = evals[0] + evals[1];
            tr.appendFr("sc/claim", out.proof.claimedSum);
        }
        tr.appendFrVec("sc/round", evals);
        Fr r = tr.challengeFr("sc/challenge");
        out.proof.roundEvals.push_back(std::move(evals));
        out.challenges.push_back(r);
        poly.fixFirstVarInPlace(r);
    }

    // After mu folds each table is a single evaluation at the challenge
    // point; these back the verifier's final check (and, in HyperPlonk, the
    // subsequent PCS openings).
    out.proof.finalSlotEvals.resize(poly.numSlots());
    for (std::size_t s = 0; s < poly.numSlots(); ++s)
        out.proof.finalSlotEvals[s] = poly.table(SlotId(s))[0];
    tr.appendFrVec("sc/final_evals", out.proof.finalSlotEvals);
    return out;
}

Fr
evalUnivariate(std::span<const Fr> evals, const Fr &r)
{
    const std::size_t n = evals.size();
    assert(n >= 1);
    if (n == 1)
        return evals[0];

    // If r is one of the integer nodes, return directly (avoids 0 division).
    for (std::size_t e = 0; e < n; ++e)
        if (r == Fr::fromU64(e))
            return evals[e];

    // Barycentric-style Lagrange on nodes 0..n-1.
    std::vector<Fr> prefix(n), suffix(n);
    Fr acc = Fr::one();
    for (std::size_t e = 0; e < n; ++e) {
        prefix[e] = acc;
        acc *= r - Fr::fromU64(e);
    }
    acc = Fr::one();
    for (std::size_t e = n; e-- > 0;) {
        suffix[e] = acc;
        acc *= r - Fr::fromU64(e);
    }

    // denom_e = e! * (n-1-e)! * (-1)^(n-1-e)
    std::vector<Fr> fact(n);
    fact[0] = Fr::one();
    for (std::size_t i = 1; i < n; ++i)
        fact[i] = fact[i - 1] * Fr::fromU64(i);
    Fr result = Fr::zero();
    for (std::size_t e = 0; e < n; ++e) {
        Fr denom = fact[e] * fact[n - 1 - e];
        if ((n - 1 - e) & 1)
            denom = denom.neg();
        result += evals[e] * prefix[e] * suffix[e] * denom.inverse();
    }
    return result;
}

} // namespace zkphire::sumcheck
