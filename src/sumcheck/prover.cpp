#include "sumcheck/prover.hpp"

#include <cassert>

#include "ff/batch_inverse.hpp"
#include "rt/cancel.hpp"
#include "rt/failpoint.hpp"
#include "rt/parallel.hpp"
#include "rt/unit_runner.hpp"

namespace zkphire::sumcheck {

using poly::GateExpr;
using poly::Mle;
using poly::SlotId;
using poly::Term;
using poly::VirtualPoly;

std::size_t
SumcheckProof::sizeBytes() const
{
    std::size_t elems = 1; // claimedSum
    for (const auto &r : roundEvals)
        elems += r.size();
    elems += finalSlotEvals.size();
    return elems * ff::kFrBytes;
}

namespace {

/**
 * Naive reference evaluator: accumulate this round's s_i evaluations over
 * pair indices [begin, end) by walking the GateExpr term list.
 *
 * For each pair, every referenced slot's (lo, hi) entries are extended to
 * X = 0..D by repeated addition of (hi - lo); term products are then formed
 * at every evaluation point and accumulated. Kept as the oracle the GatePlan
 * path is property-tested against.
 */
void
accumulateRange(const VirtualPoly &vp, std::size_t begin, std::size_t end,
                std::size_t degree, std::vector<Fr> &acc)
{
    const GateExpr &expr = vp.expr();
    const std::size_t num_slots = vp.numSlots();
    const std::size_t num_points = degree + 1;

    // ext[s * num_points + e] = slot s extended to X = e.
    std::vector<Fr> ext(num_slots * num_points);
    std::vector<bool> used(num_slots, false);
    for (SlotId s : expr.referencedSlots())
        used[s] = true;

    for (std::size_t j = begin; j < end; ++j) {
        for (std::size_t s = 0; s < num_slots; ++s) {
            if (!used[s])
                continue;
            const Mle &tbl = vp.table(SlotId(s));
            Fr lo = tbl[2 * j];
            Fr hi = tbl[2 * j + 1];
            Fr diff = hi - lo;
            Fr *e = &ext[s * num_points];
            e[0] = lo;
            for (std::size_t p = 1; p < num_points; ++p)
                e[p] = e[p - 1] + diff;
        }
        for (const Term &t : expr.terms()) {
            for (std::size_t p = 0; p < num_points; ++p) {
                Fr prod = t.coeff;
                for (SlotId f : t.factors)
                    prod *= ext[f * num_points + p];
                acc[p] += prod;
            }
        }
    }
}

/** Pair count below which cross-lane sharding of a round is not worth the
 *  wake/merge round trip; the table halves every round, so late rounds of a
 *  sharded sumcheck drop back to the single-lane path automatically. */
constexpr std::size_t kShardMinPairs = 1u << 12;

/**
 * Accumulate fill(b, e, acc) over [0, half) into an accLen-wide accumulator.
 *
 * Two nested levels of the same deterministic decomposition:
 *   - across lanes: when an ambient rt::UnitRunner is present (the engine's
 *     ShardGroup while idle lanes are reserved for this proof), the pair
 *     range splits into one contiguous sub-range per lane and each unit
 *     accumulates its sub-range on that lane's private pool;
 *   - within a lane: rt::parallelReduce chunks the (sub-)range over the
 *     pool's workers.
 * Partial accumulators are summed in ascending range order either way, and
 * field addition is exact, so the result is bit-identical to the serial
 * loop at any lane count and any thread count.
 */
template <class FillRange>
std::vector<Fr>
accumulatePairRange(std::size_t begin, std::size_t end, std::size_t acc_len,
                    const FillRange &fill)
{
    if (rt::currentThreads() <= 1 || end - begin < 1024) {
        std::vector<Fr> acc(acc_len, Fr::zero());
        fill(begin, end, acc);
        return acc;
    }
    return rt::parallelReduce<std::vector<Fr>>(
        begin, end, std::vector<Fr>(acc_len, Fr::zero()),
        [&](std::size_t b, std::size_t e) {
            std::vector<Fr> part(acc_len, Fr::zero());
            fill(b, e, part);
            return part;
        },
        [&](std::vector<Fr> acc, std::vector<Fr> part) {
            for (std::size_t p = 0; p < acc_len; ++p)
                acc[p] += part[p];
            return acc;
        },
        /*grain=*/0, /*minGrain=*/256);
}

template <class FillRange>
std::vector<Fr>
accumulatePairs(std::size_t half, std::size_t acc_len, const FillRange &fill)
{
    rt::UnitRunner *runner = rt::currentUnitRunner();
    if (runner == nullptr || runner->width() <= 1 || half < kShardMinPairs)
        return accumulatePairRange(0, half, acc_len, fill);

    const std::size_t width = runner->width();
    const std::size_t stride = (half + width - 1) / width;
    std::vector<std::vector<Fr>> parts(width);
    std::vector<std::function<void()>> units;
    units.reserve(width);
    for (std::size_t u = 0; u < width; ++u) {
        const std::size_t b = u * stride;
        const std::size_t e = std::min(half, b + stride);
        units.push_back([&parts, &fill, acc_len, b, e, u] {
            parts[u] = b < e ? accumulatePairRange(b, e, acc_len, fill)
                             : std::vector<Fr>(acc_len, Fr::zero());
        });
    }
    runner->run(units);
    std::vector<Fr> acc = std::move(parts[0]);
    for (std::size_t u = 1; u < width; ++u)
        for (std::size_t p = 0; p < acc_len; ++p)
            acc[p] += parts[u][p];
    return acc;
}

/**
 * Naive-path round evaluations. Field addition is exact, so partial
 * accumulators summed in range order give the bit-identical result of the
 * serial loop at any thread or lane count.
 */
std::vector<Fr>
roundEvaluationsNaive(const VirtualPoly &vp, std::size_t degree)
{
    const std::size_t half = std::size_t(1) << (vp.numVars() - 1);
    const std::size_t num_points = degree + 1;
    return accumulatePairs(
        half, num_points, [&](std::size_t b, std::size_t e, std::vector<Fr> &acc) {
            accumulateRange(vp, b, e, degree, acc);
        });
}

/**
 * GatePlan-path round evaluations: per-chunk flat degree-class accumulators
 * combined in chunk order (exact addition, so bit-identical at any thread
 * count), then one finalize extends every class to the composite-degree
 * node range. The result equals the naive path's value for value: the plan
 * computes the same polynomial with a different (exact) multiplication
 * tree.
 */
std::vector<Fr>
roundEvaluationsPlan(const VirtualPoly &vp)
{
    const poly::GatePlan &plan = vp.plan();
    const std::size_t half = std::size_t(1) << (vp.numVars() - 1);
    const std::size_t acc_len = plan.accSize();
    // Release consumed windows of mapped tables block by block: the data
    // survives in the page cache (MAP_SHARED) for this round's fold to
    // re-fault, while the walk stays O(chunk)-resident. Blocked here, not
    // per parallel chunk, so a serial run gets the same bound.
    const std::size_t rel_blk = std::max<std::size_t>(
        poly::currentStorePolicy().chunkElems / 2, std::size_t(2048));
    std::vector<Fr> acc = accumulatePairs(
        half, acc_len, [&](std::size_t b, std::size_t e, std::vector<Fr> &a) {
            std::vector<Fr> scratch;
            for (std::size_t p0 = b; p0 < e; p0 += rel_blk) {
                const std::size_t p1 = std::min(e, p0 + rel_blk);
                plan.accumulatePairs(vp.allTables(), p0, p1, a, scratch);
                for (const Mle &t : vp.allTables())
                    if (t.isMapped())
                        t.store().releaseWindow(2 * p0, 2 * p1);
            }
        });
    return plan.finalizeRoundEvals(acc);
}

std::vector<Fr>
roundEvaluations(const VirtualPoly &vp, std::size_t degree, EvalPath path)
{
    if (path == EvalPath::Plan)
        return roundEvaluationsPlan(vp);
    return roundEvaluationsNaive(vp, degree);
}

} // namespace

ProverOutput
prove(VirtualPoly poly, hash::Transcript &tr, const rt::Config &cfg,
      EvalPath path)
{
    const unsigned mu = poly.numVars();
    const std::size_t degree = poly.expr().degree();
    assert(mu > 0 && degree > 0);

    // A default Config inherits the ambient setting (enclosing ScopedConfig
    // or the runtime default); explicit fields pin both the round
    // evaluations and the MLE folds.
    rt::ScopedConfig scope(cfg);

    ProverOutput out;
    out.proof.roundEvals.reserve(mu);
    out.challenges.reserve(mu);

    tr.appendU64("sc/num_vars", mu);
    tr.appendU64("sc/degree", degree);

    /** Pair count above which the fused fold+evaluate walk beats separate
     *  fold and evaluation passes (below it the extra scratch traffic is
     *  not worth saving one table walk). */
    constexpr std::size_t kFuseMinPairs = 1u << 12;

    std::vector<Fr> evals = roundEvaluations(poly, degree, path);
    for (unsigned round = 0; round < mu; ++round) {
        // Round boundary: transcript state is consistent between rounds, so
        // both cancellation delivery and fault injection land here.
        rt::checkCancel();
        rt::failpoint("sumcheck.round");
        if (round == 0) {
            out.proof.claimedSum = evals[0] + evals[1];
            tr.appendFr("sc/claim", out.proof.claimedSum);
        }
        tr.appendFrVec("sc/round", evals);
        Fr r = tr.challengeFr("sc/challenge");
        out.proof.roundEvals.push_back(std::move(evals));
        out.challenges.push_back(r);
        if (round + 1 == mu) {
            poly.fixFirstVarInPlace(r);
            continue;
        }
        // Fuse this round's fold with the next round's evaluation when the
        // Plan path is active and the round is not sharded across lanes:
        // each chunk of the halved table is evaluated in the same walk that
        // writes it, so a streamed table is touched once per round instead
        // of twice. Values are bit-identical either way (exact arithmetic,
        // identical per-index formulas) — this only moves wall-clock and
        // RSS, never bytes.
        rt::UnitRunner *runner = rt::currentUnitRunner();
        const std::size_t next_half = std::size_t(1)
                                      << (poly.numVars() - 2);
        const bool sharded = runner != nullptr && runner->width() > 1 &&
                             next_half >= kShardMinPairs;
        if (path == EvalPath::Plan && !sharded &&
            (poly.anyTableMapped() || next_half >= kFuseMinPairs)) {
            evals = poly.plan().finalizeRoundEvals(poly.foldAndAccumulate(r));
        } else {
            poly.fixFirstVarInPlace(r);
            evals = roundEvaluations(poly, degree, path);
        }
    }

    // After mu folds each table is a single evaluation at the challenge
    // point; these back the verifier's final check (and, in HyperPlonk, the
    // subsequent PCS openings).
    out.proof.finalSlotEvals.resize(poly.numSlots());
    for (std::size_t s = 0; s < poly.numSlots(); ++s)
        out.proof.finalSlotEvals[s] = poly.table(SlotId(s))[0];
    tr.appendFrVec("sc/final_evals", out.proof.finalSlotEvals);
    return out;
}

Fr
evalUnivariate(std::span<const Fr> evals, const Fr &r)
{
    const std::size_t n = evals.size();
    assert(n >= 1);
    if (n == 1)
        return evals[0];

    // If r is one of the integer nodes, return directly (avoids 0 division).
    for (std::size_t e = 0; e < n; ++e)
        if (r == Fr::fromU64(e))
            return evals[e];

    // Barycentric-style Lagrange on nodes 0..n-1.
    std::vector<Fr> prefix(n), suffix(n);
    Fr acc = Fr::one();
    for (std::size_t e = 0; e < n; ++e) {
        prefix[e] = acc;
        acc *= r - Fr::fromU64(e);
    }
    acc = Fr::one();
    for (std::size_t e = n; e-- > 0;) {
        suffix[e] = acc;
        acc *= r - Fr::fromU64(e);
    }

    // denom_e = e! * (n-1-e)! * (-1)^(n-1-e), all inverted in one
    // Montgomery batch pass (inverses are canonical field values, so this
    // matches per-element .inverse() bit for bit).
    std::vector<Fr> fact(n);
    fact[0] = Fr::one();
    for (std::size_t i = 1; i < n; ++i)
        fact[i] = fact[i - 1] * Fr::fromU64(i);
    std::vector<Fr> denom(n);
    for (std::size_t e = 0; e < n; ++e) {
        denom[e] = fact[e] * fact[n - 1 - e];
        if ((n - 1 - e) & 1)
            denom[e] = denom[e].neg();
    }
    ff::batchInverseInPlace(std::span<Fr>(denom));
    Fr result = Fr::zero();
    for (std::size_t e = 0; e < n; ++e)
        result += evals[e] * prefix[e] * suffix[e] * denom[e];
    return result;
}

} // namespace zkphire::sumcheck
