/**
 * @file
 * Grand-product argument machinery (Quarks-style product tree).
 *
 * The Wire Identity step proves a permutation by showing the grand product
 * of fractional terms phi equals 1. Following HyperPlonk/zkSpeed, the prover
 * materializes a (mu+1)-variable MLE v whose even entries are the leaves phi
 * and whose odd entries are internal product-tree nodes:
 *
 *     v(0, x) = phi(x)                    (leaves;    v[2x]   = phi[x])
 *     v(1, x) = v(x, 0) * v(x, 1)         (products;  v[2x+1] = v[x]*v[x+N])
 *
 * The paper's PermCheck polynomial (Table I, rows 21/23) then ZeroChecks
 *     pi(x) - p1(x)*p2(x) + alpha * (phi(x)*Prod_j D_j(x) - Prod_j N_j(x))
 * where pi(x) = v(1,x), p1(x) = v(x,0), p2(x) = v(x,1) are index-views of v,
 * and the final product v(1,..,1,0) = 1 is checked via one extra opening.
 */
#ifndef ZKPHIRE_SUMCHECK_GRAND_PRODUCT_HPP
#define ZKPHIRE_SUMCHECK_GRAND_PRODUCT_HPP

#include "poly/mle.hpp"

namespace zkphire::sumcheck {

using poly::Fr;
using poly::Mle;

/**
 * Build the (mu+1)-variable product-tree MLE v from leaves phi.
 *
 * The all-ones entry v[2^(mu+1)-1] is set to zero; the product relation at
 * x = 1^mu then holds exactly when the grand product is 1 (see file
 * comment), which is the case for valid permutation arguments.
 */
Mle buildProductTree(const Mle &phi);

/** pi view: pi(x) = v(1, x) — the odd-index entries of v. */
Mle extractPi(const Mle &v);

/** p1 view: p1(x) = v(x, 0) — the lower half of v. */
Mle extractP1(const Mle &v);

/** p2 view: p2(x) = v(x, 1) — the upper half of v. */
Mle extractP2(const Mle &v);

/**
 * The grand product of the leaves as recorded in the tree:
 * v(1,...,1,0) = v[2^mu - 1].
 */
Fr treeRootProduct(const Mle &v);

/**
 * The point (1,...,1,0) over mu+1 variables at which an opening of v reveals
 * the grand product (little-endian: first mu coordinates 1, last 0).
 */
std::vector<Fr> rootProductPoint(unsigned mu);

} // namespace zkphire::sumcheck

#endif // ZKPHIRE_SUMCHECK_GRAND_PRODUCT_HPP
