#include "sumcheck/grand_product.hpp"

#include <cassert>
#include <cstdint>
#include <vector>

#include "rt/parallel.hpp"

namespace zkphire::sumcheck {

namespace {

/**
 * Memoized evaluation of tree entry i. Odd-index chains strictly increase
 * toward 2N-1 and even indices are leaves, so recursion depth is O(mu).
 */
Fr
computeEntry(std::size_t i, const Mle &phi, std::vector<Fr> &v,
             std::vector<std::uint8_t> &done, std::size_t n)
{
    if (done[i])
        return v[i];
    Fr val;
    if (i % 2 == 0) {
        val = phi[i / 2];
    } else if (i == 2 * n - 1) {
        // All-ones entry: unconstrained when the grand product is 1 (the
        // relation there reads v = root * v); pin it to zero.
        val = Fr::zero();
    } else {
        std::size_t x = (i - 1) / 2;
        Fr left = computeEntry(x, phi, v, done, n);
        Fr right = computeEntry(x + n, phi, v, done, n);
        val = left * right;
    }
    v[i] = val;
    done[i] = 1;
    return val;
}

} // namespace

Mle
buildProductTree(const Mle &phi)
{
    const std::size_t n = phi.size();
    std::vector<Fr> v(2 * n, Fr::zero());
    std::vector<std::uint8_t> done(2 * n, 0);
    // The leaf level v[2x] = phi[x] is half the table and has no
    // dependencies: copy it in parallel (distinct indices, exact copies, so
    // bit-identical to the serial loop at any thread count). The internal
    // odd-index nodes then find every leaf memoized and only walk the
    // product chains.
    rt::parallelFor(
        0, n,
        [&](std::size_t x) {
            v[2 * x] = phi[x];
            done[2 * x] = 1;
        },
        /*grain=*/0, /*minGrain=*/1024);
    for (std::size_t i = 1; i < 2 * n; i += 2)
        computeEntry(i, phi, v, done, n);
    return Mle(std::move(v));
}

Mle
extractPi(const Mle &v)
{
    const std::size_t n = v.size() / 2;
    std::vector<Fr> pi(n);
    for (std::size_t x = 0; x < n; ++x)
        pi[x] = v[2 * x + 1];
    return Mle(std::move(pi));
}

Mle
extractP1(const Mle &v)
{
    const std::size_t n = v.size() / 2;
    std::vector<Fr> p1(v.evals().begin(), v.evals().begin() + n);
    return Mle(std::move(p1));
}

Mle
extractP2(const Mle &v)
{
    const std::size_t n = v.size() / 2;
    std::vector<Fr> p2(v.evals().begin() + n, v.evals().end());
    return Mle(std::move(p2));
}

Fr
treeRootProduct(const Mle &v)
{
    const std::size_t n = v.size() / 2;
    return v[n - 1];
}

std::vector<Fr>
rootProductPoint(unsigned mu)
{
    std::vector<Fr> point(mu + 1, Fr::one());
    point[mu] = Fr::zero();
    return point;
}

} // namespace zkphire::sumcheck
