#include "sumcheck/grand_product.hpp"

#include <cassert>
#include <cstdint>
#include <vector>

#include "rt/parallel.hpp"

namespace zkphire::sumcheck {

Mle
buildProductTree(const Mle &phi)
{
    const std::size_t n = phi.size();
    std::vector<Fr> v(2 * n, Fr::zero());
    // The even indices v[2x] = phi[x] are the leaves; the odd internal
    // nodes stratify into levels by their low bits: level L is exactly the
    // indices i = (2^L - 1) + j * 2^(L+1), and both children of a level-L
    // node — x = (i-1)/2 and x + n — satisfy the level-(L-1) congruence
    // i' = 2^(L-1) - 1 (mod 2^L). Building level by level therefore opens
    // n / 2^L-wide parallelism at every level with each product reading
    // only finished entries; operands and order match the serial recursion
    // exactly, so the table is bit-identical at any thread count.
    rt::parallelFor(
        0, n, [&](std::size_t x) { v[2 * x] = phi[x]; },
        /*grain=*/0, /*minGrain=*/1024);
    for (std::size_t level = 1; (std::size_t(1) << level) <= n; ++level) {
        const std::size_t base = (std::size_t(1) << level) - 1;
        const std::size_t step = std::size_t(1) << (level + 1);
        rt::parallelFor(
            0, n >> level,
            [&](std::size_t j) {
                const std::size_t i = base + j * step;
                const std::size_t x = (i - 1) / 2;
                v[i] = v[x] * v[x + n];
            },
            /*grain=*/0, /*minGrain=*/256);
    }
    // All-ones entry v[2n-1]: unconstrained when the grand product is 1
    // (the relation there reads v = root * v); pin it to zero.
    v[2 * n - 1] = Fr::zero();
    return Mle(std::move(v));
}

Mle
extractPi(const Mle &v)
{
    const std::size_t n = v.size() / 2;
    std::vector<Fr> pi(n);
    for (std::size_t x = 0; x < n; ++x)
        pi[x] = v[2 * x + 1];
    return Mle(std::move(pi));
}

Mle
extractP1(const Mle &v)
{
    const std::size_t n = v.size() / 2;
    std::vector<Fr> p1(v.evals().begin(), v.evals().begin() + n);
    return Mle(std::move(p1));
}

Mle
extractP2(const Mle &v)
{
    const std::size_t n = v.size() / 2;
    std::vector<Fr> p2(v.evals().begin() + n, v.evals().end());
    return Mle(std::move(p2));
}

Fr
treeRootProduct(const Mle &v)
{
    const std::size_t n = v.size() / 2;
    return v[n - 1];
}

std::vector<Fr>
rootProductPoint(unsigned mu)
{
    std::vector<Fr> point(mu + 1, Fr::one());
    point[mu] = Fr::zero();
    return point;
}

} // namespace zkphire::sumcheck
