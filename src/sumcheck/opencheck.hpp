/**
 * @file
 * OpenCheck: batching many (polynomial, point, value) evaluation claims into
 * a single SumCheck (paper §IV-A, Table I row 24).
 *
 * Given claims P_i(z_i) = y_i, the verifier samples eta and both sides run
 * SumCheck over
 *     g(x) = Sum_i eta^i * P_i(x) * eq(x, z_i)
 * whose hypercube sum equals Sum_i eta^i * y_i. After the SumCheck, all
 * claims collapse to evaluations of the P_i at ONE common point (the round
 * challenges), which a single batched PCS opening then certifies — this is
 * what keeps HyperPlonk proofs at 4-5 KB.
 */
#ifndef ZKPHIRE_SUMCHECK_OPENCHECK_HPP
#define ZKPHIRE_SUMCHECK_OPENCHECK_HPP

#include <vector>

#include "sumcheck/prover.hpp"
#include "sumcheck/verifier.hpp"

namespace zkphire::sumcheck {

/** One evaluation claim to be batched. */
struct EvalClaim {
    poly::Mle table;        // prover side: the polynomial (verifier: empty)
    std::vector<Fr> point;  // z_i
    Fr value;               // y_i
};

/** OpenCheck proof. */
struct OpencheckProof {
    SumcheckProof sc;
    std::size_t sizeBytes() const { return sc.sizeBytes(); }
};

struct OpencheckProverOutput {
    OpencheckProof proof;
    std::vector<Fr> challenges; // the single common opening point
    /** P_i evaluations at the common point (to be PCS-opened). */
    std::vector<Fr> polyEvals;
};

/** Prove a batch of evaluation claims. All points must have equal dims.
 *  cfg covers the eq-table builds as well as the inner sumcheck. */
OpencheckProverOutput proveOpen(std::vector<EvalClaim> claims,
                                hash::Transcript &tr,
                                const rt::Config &cfg = {});

struct OpencheckVerifyResult {
    bool ok = false;
    std::string error;
    std::vector<Fr> challenges;
    std::vector<Fr> polyEvals; // claimed P_i(challenges), PCS-bound later
};

/**
 * Verify an OpenCheck proof against claims (tables not needed; only points
 * and values). eq(x, z_i) evaluations at the challenge point are recomputed
 * by the verifier.
 */
OpencheckVerifyResult verifyOpen(const std::vector<EvalClaim> &claims,
                                 const OpencheckProof &proof,
                                 unsigned num_vars, hash::Transcript &tr);

} // namespace zkphire::sumcheck

#endif // ZKPHIRE_SUMCHECK_OPENCHECK_HPP
