#include "sumcheck/zerocheck.hpp"

#include <cassert>

#include "poly/virtual_poly.hpp"
#include "rt/parallel.hpp"

namespace zkphire::sumcheck {

using poly::GateExpr;
using poly::Mle;
using poly::SlotId;
using poly::VirtualPoly;

ZerocheckProverOutput
proveZero(const GateExpr &expr, std::vector<Mle> tables, hash::Transcript &tr,
          const rt::Config &cfg,
          std::shared_ptr<const poly::GatePlan> maskedPlan)
{
    assert(!tables.empty());
    const unsigned mu = tables[0].numVars();

    // Pin the whole round (eq-table build included), not just the inner
    // sumcheck; a default Config inherits the ambient setting.
    rt::ScopedConfig scope(cfg);

    ZerocheckProverOutput out;
    out.rVec = tr.challengeFrVec("zc/r", mu);

    SlotId fr_slot = 0;
    GateExpr masked = expr.multipliedBySlot("f_r", &fr_slot);
    tables.push_back(Mle::eqTable(out.rVec));

    ProverOutput sc =
        prove(VirtualPoly(masked, std::move(tables), std::move(maskedPlan)),
              tr);
    assert(sc.proof.claimedSum.isZero() &&
           "ZeroCheck witness does not satisfy the constraint");
    out.proof.sc = std::move(sc.proof);
    out.challenges = std::move(sc.challenges);
    return out;
}

ZerocheckVerifyResult
verifyZero(const GateExpr &expr, const ZerocheckProof &proof,
           unsigned num_vars, hash::Transcript &tr)
{
    ZerocheckVerifyResult res;
    std::vector<Fr> r_vec = tr.challengeFrVec("zc/r", num_vars);

    GateExpr masked = expr.multipliedBySlot("f_r", nullptr);
    RoundCheckResult rounds = verifyRounds(
        proof.sc, num_vars, masked.degree(), tr, Fr::zero());
    if (!rounds.ok) {
        res.error = rounds.error;
        return res;
    }
    if (proof.sc.finalSlotEvals.size() != masked.numSlots()) {
        res.error = "wrong number of final slot evaluations";
        return res;
    }

    // Recompute f_r(challenges) = eq(challenges, r) ourselves and splice it
    // over the prover's claimed value before the final check.
    std::vector<Fr> evals = proof.sc.finalSlotEvals;
    evals.back() = poly::eqEval(rounds.challenges, r_vec);
    if (masked.evaluate(evals) != rounds.finalClaim) {
        res.error = "final evaluation check failed";
        return res;
    }

    res.ok = true;
    res.challenges = std::move(rounds.challenges);
    res.slotEvals.assign(evals.begin(), evals.end() - 1);
    return res;
}

} // namespace zkphire::sumcheck
