/**
 * @file
 * ZeroCheck: proving that a composite polynomial vanishes on the whole
 * hypercube.
 *
 * Per paper §III-F, checking Sum_x f(x) = 0 is insufficient (nonzero gate
 * errors could cancel); instead the prover shows Sum_x f(x) * f_r(x) = 0
 * where f_r(x) = eq(x, r) for a verifier-chosen random vector r. The
 * expression fed to SumCheck is the original gate expression with one extra
 * factor on every term (raising its degree by one), and f_r is built on the
 * fly from r — the Build MLE kernel that zkPHIRE fuses into round 1 of its
 * SumCheck datapath.
 */
#ifndef ZKPHIRE_SUMCHECK_ZEROCHECK_HPP
#define ZKPHIRE_SUMCHECK_ZEROCHECK_HPP

#include <memory>
#include <vector>

#include "sumcheck/prover.hpp"
#include "sumcheck/verifier.hpp"

namespace zkphire::sumcheck {

/** ZeroCheck proof: a SumCheck proof over the f * f_r composition. */
struct ZerocheckProof {
    SumcheckProof sc;
    std::size_t sizeBytes() const { return sc.sizeBytes(); }
};

/** Prover output: proof plus challenge bookkeeping for later openings. */
struct ZerocheckProverOutput {
    ZerocheckProof proof;
    std::vector<Fr> challenges; // SumCheck round challenges (opening point)
    std::vector<Fr> rVec;       // the f_r construction vector
};

/**
 * Prove Sum_x expr(x) = 0 for all x (ZeroCheck).
 *
 * @param expr   Gate expression WITHOUT the f_r factor.
 * @param tables One MLE per expression slot.
 * @param tr     Fiat-Shamir transcript.
 * @param cfg    Prover runtime config (default inherits the ambient
 *               setting; covers the eq-table build and the inner sumcheck).
 * @param maskedPlan Optional precompiled plan for the MASKED composition
 *                expr * f_r (e.g. gates::PlanCache::maskedPlan); when null
 *                the plan is lowered here. The transcript is identical
 *                either way.
 */
ZerocheckProverOutput
proveZero(const poly::GateExpr &expr, std::vector<poly::Mle> tables,
          hash::Transcript &tr, const rt::Config &cfg = {},
          std::shared_ptr<const poly::GatePlan> maskedPlan = nullptr);

/** ZeroCheck verification result. */
struct ZerocheckVerifyResult {
    bool ok = false;
    std::string error;
    std::vector<Fr> challenges;   // opening point for the slot MLEs
    std::vector<Fr> slotEvals;    // prover-claimed evals (excluding f_r)
};

/**
 * Verify a ZeroCheck proof. The verifier recomputes f_r's evaluation at the
 * challenge point itself (eq(challenges, r)) rather than trusting the
 * prover, so only the original slots' claimed evaluations remain to be bound
 * by the PCS layer.
 */
ZerocheckVerifyResult verifyZero(const poly::GateExpr &expr,
                                 const ZerocheckProof &proof,
                                 unsigned num_vars, hash::Transcript &tr);

} // namespace zkphire::sumcheck

#endif // ZKPHIRE_SUMCHECK_ZEROCHECK_HPP
