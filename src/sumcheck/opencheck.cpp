#include "sumcheck/opencheck.hpp"

#include <cassert>

#include "poly/virtual_poly.hpp"
#include "rt/parallel.hpp"

namespace zkphire::sumcheck {

using poly::GateExpr;
using poly::Mle;
using poly::SlotId;
using poly::VirtualPoly;

namespace {

/** Build the batched expression Sum_i eta^i * P_i * eq_i over 2k slots. */
GateExpr
batchedExpr(std::size_t k, const Fr &eta)
{
    GateExpr expr("OpenCheck");
    std::vector<SlotId> poly_slots(k), eq_slots(k);
    for (std::size_t i = 0; i < k; ++i)
        poly_slots[i] = expr.addSlot("P" + std::to_string(i));
    for (std::size_t i = 0; i < k; ++i)
        eq_slots[i] = expr.addSlot("eq" + std::to_string(i));
    Fr coeff = Fr::one();
    for (std::size_t i = 0; i < k; ++i) {
        expr.addTerm(coeff, {poly_slots[i], eq_slots[i]});
        coeff *= eta;
    }
    return expr;
}

/** Transcript binding of the claim set (points and values). */
void
bindClaims(const std::vector<EvalClaim> &claims, hash::Transcript &tr)
{
    tr.appendU64("oc/num_claims", claims.size());
    for (const EvalClaim &c : claims) {
        tr.appendFrVec("oc/point", c.point);
        tr.appendFr("oc/value", c.value);
    }
}

} // namespace

OpencheckProverOutput
proveOpen(std::vector<EvalClaim> claims, hash::Transcript &tr,
          const rt::Config &cfg)
{
    assert(!claims.empty());
    [[maybe_unused]] const unsigned mu = unsigned(claims[0].point.size());
    const std::size_t k = claims.size();
    for ([[maybe_unused]] const EvalClaim &c : claims) {
        assert(c.point.size() == mu && "all claims must share dimensions");
        assert(c.table.numVars() == mu);
    }

    // Covers the eq-table builds below as well as the inner sumcheck.
    rt::ScopedConfig scope(cfg);

    bindClaims(claims, tr);
    Fr eta = tr.challengeFr("oc/eta");

    GateExpr expr = batchedExpr(k, eta);
    std::vector<Mle> tables;
    tables.reserve(2 * k);
    for (EvalClaim &c : claims)
        tables.push_back(std::move(c.table));
    for (const EvalClaim &c : claims)
        tables.push_back(Mle::eqTable(c.point));

    ProverOutput sc = prove(VirtualPoly(expr, std::move(tables)), tr);

    OpencheckProverOutput out;
    out.polyEvals.assign(sc.proof.finalSlotEvals.begin(),
                         sc.proof.finalSlotEvals.begin() + k);
    out.proof.sc = std::move(sc.proof);
    out.challenges = std::move(sc.challenges);
    return out;
}

OpencheckVerifyResult
verifyOpen(const std::vector<EvalClaim> &claims, const OpencheckProof &proof,
           unsigned num_vars, hash::Transcript &tr)
{
    OpencheckVerifyResult res;
    const std::size_t k = claims.size();
    if (k == 0) {
        res.error = "no claims";
        return res;
    }

    bindClaims(claims, tr);
    Fr eta = tr.challengeFr("oc/eta");

    // Expected batched sum: Sum_i eta^i * y_i.
    Fr expected = Fr::zero();
    Fr coeff = Fr::one();
    for (const EvalClaim &c : claims) {
        expected += coeff * c.value;
        coeff *= eta;
    }

    GateExpr expr = batchedExpr(k, eta);
    RoundCheckResult rounds =
        verifyRounds(proof.sc, num_vars, expr.degree(), tr, expected);
    if (!rounds.ok) {
        res.error = rounds.error;
        return res;
    }
    if (proof.sc.finalSlotEvals.size() != 2 * k) {
        res.error = "wrong number of final slot evaluations";
        return res;
    }

    // Recompute the eq slot evaluations; only the P_i evals stay claimed.
    std::vector<Fr> evals = proof.sc.finalSlotEvals;
    for (std::size_t i = 0; i < k; ++i)
        evals[k + i] = poly::eqEval(rounds.challenges, claims[i].point);
    if (expr.evaluate(evals) != rounds.finalClaim) {
        res.error = "final evaluation check failed";
        return res;
    }

    res.ok = true;
    res.challenges = std::move(rounds.challenges);
    res.polyEvals.assign(evals.begin(), evals.begin() + k);
    return res;
}

} // namespace zkphire::sumcheck
