/**
 * @file
 * SumCheck prover over composite multilinear polynomials.
 *
 * Implements the mu-round protocol of paper §II-C: in round i the prover
 * sends the univariate s_i(X) as its evaluations at X = 0..D (D = composite
 * degree), obtained by extending every constituent MLE's (lo, hi) pair to
 * X = 2..D with repeated additions ("Extension Engines"), multiplying
 * extensions term-wise ("Product Lanes"), and accumulating down the table.
 * The Fiat-Shamir challenge then drives the MLE Update that halves every
 * table. This functional prover is the reference the hardware model's cycle
 * counts are anchored to, and the baseline CPU implementation we time.
 */
#ifndef ZKPHIRE_SUMCHECK_PROVER_HPP
#define ZKPHIRE_SUMCHECK_PROVER_HPP

#include <vector>

#include "hash/transcript.hpp"
#include "poly/virtual_poly.hpp"
#include "rt/config.hpp"

namespace zkphire::sumcheck {

using ff::Fr;

/** Non-interactive SumCheck proof (Fiat-Shamir transformed). */
struct SumcheckProof {
    /** The claimed value of Sum_x f(x). */
    Fr claimedSum;
    /** Round i's s_i evaluated at 0..degree (degree+1 values per round). */
    std::vector<std::vector<Fr>> roundEvals;
    /** Prover-claimed evaluation of each slot MLE at the challenge point. */
    std::vector<Fr> finalSlotEvals;

    /** Serialized size in bytes (32 B per field element), for proof sizing. */
    std::size_t sizeBytes() const;
};

/** Proof plus the challenge vector the transcript produced. */
struct ProverOutput {
    SumcheckProof proof;
    std::vector<Fr> challenges; // r_1..r_mu in round order
};

/**
 * Round-evaluation strategy. Plan runs the compiled GatePlan (shared
 * sub-products, per-slot extension bounds, degree-class accumulation);
 * Naive walks the GateExpr term list directly. Both produce byte-identical
 * transcripts — Naive is kept as the reference oracle for the GatePlan
 * property tests and for A/B benchmarking, not as a production path.
 */
enum class EvalPath { Plan, Naive };

/**
 * Run the full SumCheck prover.
 *
 * @param poly Composite polynomial (consumed: tables are folded in place).
 * @param tr   Fiat-Shamir transcript shared with the verifier.
 * @param cfg  Runtime config for the per-round extension/product loop and
 *             the MLE folds (the paper's CPU baselines are 4- and
 *             32-threaded). A default Config inherits the ambient setting
 *             (an enclosing ScopedConfig, else ZKPHIRE_THREADS / hardware
 *             concurrency); threads = 1 forces serial execution. The proof
 *             transcript is bit-identical under every Config.
 * @param path Round-evaluation strategy (transcript-identical either way).
 */
ProverOutput prove(poly::VirtualPoly poly, hash::Transcript &tr,
                   const rt::Config &cfg = {}, EvalPath path = EvalPath::Plan);

/**
 * Evaluate the univariate polynomial given by its values at 0..d at point r
 * (Lagrange interpolation on the integer nodes). Shared by prover tests and
 * the verifier's round check.
 */
Fr evalUnivariate(std::span<const Fr> evals_at_0_to_d, const Fr &r);

} // namespace zkphire::sumcheck

#endif // ZKPHIRE_SUMCHECK_PROVER_HPP
