/**
 * @file
 * SumCheck verifier.
 *
 * Replays the Fiat-Shamir transcript, checks s_i(0) + s_i(1) against the
 * running claim each round, reduces the claim to s_i(r_i), and finally
 * checks the composite expression against the prover's claimed slot
 * evaluations (paper §II-C: "V evaluates f at (r_1..r_mu) and accepts if all
 * checks pass"). Callers that can compute some slot evaluations themselves
 * (e.g. ZeroCheck's f_r = eq(x, r)) override the prover-claimed values.
 */
#ifndef ZKPHIRE_SUMCHECK_VERIFIER_HPP
#define ZKPHIRE_SUMCHECK_VERIFIER_HPP

#include <optional>
#include <string>
#include <vector>

#include "hash/transcript.hpp"
#include "poly/gate_expr.hpp"
#include "sumcheck/prover.hpp"

namespace zkphire::sumcheck {

/** Outcome of transcript replay + round checks. */
struct RoundCheckResult {
    bool ok = false;
    std::string error;
    std::vector<Fr> challenges; // reconstructed r_1..r_mu
    Fr finalClaim;              // expected f(r_1..r_mu)
};

/**
 * Verify the round structure of a proof: transcript consistency and the
 * s_i(0)+s_i(1) == claim chain. Does NOT perform the final evaluation check.
 *
 * @param expected_sum If set, additionally require claimedSum == *expected_sum
 *        (ZeroCheck requires 0).
 */
RoundCheckResult verifyRounds(const SumcheckProof &proof, unsigned num_vars,
                              std::size_t degree, hash::Transcript &tr,
                              const std::optional<Fr> &expected_sum = {});

/**
 * Full verification: round checks plus the final evaluation check
 * expr(finalSlotEvals) == finalClaim using the prover-claimed slot values.
 * (In the full HyperPlonk pipeline the claimed values are additionally bound
 * by PCS openings; see src/hyperplonk/verifier.)
 */
RoundCheckResult verify(const poly::GateExpr &expr, const SumcheckProof &proof,
                        unsigned num_vars, hash::Transcript &tr,
                        const std::optional<Fr> &expected_sum = {});

} // namespace zkphire::sumcheck

#endif // ZKPHIRE_SUMCHECK_VERIFIER_HPP
