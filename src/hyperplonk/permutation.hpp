/**
 * @file
 * Wiring permutation construction for the Wire Identity step.
 *
 * Copy constraints partition the k*N witness cells into equivalence classes;
 * sigma maps each cell to the next one in its class's cycle (identity for
 * singletons). The fractional polynomials are then
 *     N_j(x) = w_j(x) + beta * id_j(x) + gamma
 *     D_j(x) = w_j(x) + beta * sigma_j(x) + gamma
 *     phi(x) = prod_j N_j(x) / prod_j D_j(x)
 * whose grand product is 1 exactly when the witness respects the wiring
 * (w.h.p. over beta, gamma). phi's division uses batched inversion — the
 * same algorithm the Permutation Quotient Generator unit implements.
 */
#ifndef ZKPHIRE_HYPERPLONK_PERMUTATION_HPP
#define ZKPHIRE_HYPERPLONK_PERMUTATION_HPP

#include <vector>

#include "hyperplonk/circuit.hpp"
#include "poly/mle.hpp"

namespace zkphire::hyperplonk {

/** Per-column identity and sigma tables (values are global cell ids). */
struct PermutationData {
    std::vector<Mle> id;    // id_j[x] = j*N + x
    std::vector<Mle> sigma; // image of cell (j, x) under the wiring cycle
};

/** Build id/sigma MLEs from a circuit's copy constraints. */
PermutationData buildPermutation(const Circuit &circuit);

/** N_j, D_j, and phi for given witness columns and challenges. */
struct FractionPolys {
    std::vector<Mle> numer; // N_j
    std::vector<Mle> denom; // D_j
    Mle phi;
};

FractionPolys buildFractionPolys(const std::vector<Mle> &witness,
                                 const PermutationData &perm, const Fr &beta,
                                 const Fr &gamma);

/**
 * Evaluate id_j at an arbitrary point: id_j is multilinear with
 * id_j(x) = j*N + Sum_i 2^i x_i, so the verifier computes this in O(mu).
 */
Fr evalIdMle(unsigned col, unsigned mu, std::span<const Fr> point);

} // namespace zkphire::hyperplonk

#endif // ZKPHIRE_HYPERPLONK_PERMUTATION_HPP
