#include "hyperplonk/proof.hpp"

#include <sstream>

namespace zkphire::hyperplonk {

namespace {

constexpr std::size_t kFrBytes = 32;
/** Compressed G1 encoding (x coordinate + sign bit packed), as in BLS12-381
 *  serialization standards. */
constexpr std::size_t kPointBytes = 48;

std::size_t
sumcheckBytes(const sumcheck::SumcheckProof &sc)
{
    std::size_t field_elems = 1; // claimed sum
    for (const auto &round : sc.roundEvals) {
        // Standard optimization: s(1) = claim - s(0) is derivable, so one
        // evaluation per round need not be sent.
        field_elems += round.size() - 1;
    }
    field_elems += sc.finalSlotEvals.size();
    return field_elems * kFrBytes;
}

} // namespace

ProofSizeBreakdown
HyperPlonkProof::sizeBreakdown() const
{
    ProofSizeBreakdown b;
    b.commitments = (witnessComms.size() + 2) * kPointBytes;
    b.gateZeroCheck = sumcheckBytes(gateZC.sc);
    b.permZeroCheck = sumcheckBytes(permZC.sc);
    b.openChecks = sumcheckBytes(openA.sc) + sumcheckBytes(openB.sc);
    b.pcsOpenings =
        (pcsA.quotients.size() + pcsB.quotients.size()) * kPointBytes;
    b.auxEvals = (wAtZp.size() + sigmaAtZp.size()) * kFrBytes;
    return b;
}

std::string
ProofSizeBreakdown::toString() const
{
    std::ostringstream os;
    os << "proof size " << total() << " B ("
       << "commitments " << commitments << ", gate ZC " << gateZeroCheck
       << ", perm ZC " << permZeroCheck << ", OpenChecks " << openChecks
       << ", PCS " << pcsOpenings << ", aux evals " << auxEvals << ")";
    return os.str();
}

} // namespace zkphire::hyperplonk
