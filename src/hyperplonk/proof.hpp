/**
 * @file
 * HyperPlonk proof object and size accounting.
 *
 * The proof mirrors the paper's five prover steps: witness commitments,
 * Gate Identity ZeroCheck, Wire Identity (phi/v commitments + PermCheck
 * ZeroCheck), Batch Evaluations (two OpenChecks: one over mu-variable
 * claims, one over the (mu+1)-variable product-tree polynomial v), and the
 * final batched PCS openings. Size accounting assumes the standard
 * compressed encodings (48 B G1 points, 32 B field elements), giving the
 * "few KB" proofs the paper reports.
 */
#ifndef ZKPHIRE_HYPERPLONK_PROOF_HPP
#define ZKPHIRE_HYPERPLONK_PROOF_HPP

#include <string>
#include <vector>

#include "pcs/mkzg.hpp"
#include "sumcheck/opencheck.hpp"
#include "sumcheck/zerocheck.hpp"

namespace zkphire::hyperplonk {

/** Per-component proof size breakdown (bytes, compressed encodings). */
struct ProofSizeBreakdown {
    std::size_t commitments = 0;
    std::size_t gateZeroCheck = 0;
    std::size_t permZeroCheck = 0;
    std::size_t openChecks = 0;
    std::size_t pcsOpenings = 0;
    std::size_t auxEvals = 0;
    std::size_t total() const
    {
        return commitments + gateZeroCheck + permZeroCheck + openChecks +
               pcsOpenings + auxEvals;
    }
    std::string toString() const;
};

/** A complete HyperPlonk proof. */
struct HyperPlonkProof {
    // Step 1: witness commitments.
    std::vector<pcs::Commitment> witnessComms;
    // Step 3: wire-identity commitments.
    pcs::Commitment phiComm;
    pcs::Commitment vComm;
    // Steps 2-3: ZeroChecks.
    sumcheck::ZerocheckProof gateZC;
    sumcheck::ZerocheckProof permZC;
    // Auxiliary claimed evaluations at the PermCheck point z_p.
    std::vector<ff::Fr> wAtZp;
    std::vector<ff::Fr> sigmaAtZp;
    // Step 4: batched evaluation reductions.
    sumcheck::OpencheckProof openA; // mu-variable claims
    sumcheck::OpencheckProof openB; // claims on v (mu+1 variables)
    // Step 5: PCS openings.
    pcs::OpeningProof pcsA;
    pcs::OpeningProof pcsB;

    ProofSizeBreakdown sizeBreakdown() const;
    std::size_t sizeBytes() const { return sizeBreakdown().total(); }
};

} // namespace zkphire::hyperplonk

#endif // ZKPHIRE_HYPERPLONK_PROOF_HPP
