/**
 * @file
 * Transcript layout and claim ordering shared by the HyperPlonk prover and
 * verifier. Both sides must absorb the same messages in the same order for
 * Fiat-Shamir to produce matching challenges, so the common structure lives
 * here in one place.
 */
#ifndef ZKPHIRE_HYPERPLONK_PROTOCOL_COMMON_HPP
#define ZKPHIRE_HYPERPLONK_PROTOCOL_COMMON_HPP

#include <span>
#include <vector>

#include "hash/transcript.hpp"
#include "hyperplonk/circuit.hpp"
#include "hyperplonk/permutation.hpp"
#include "pcs/mkzg.hpp"
#include "sumcheck/grand_product.hpp"
#include "sumcheck/opencheck.hpp"

namespace zkphire::hyperplonk::detail {

using sumcheck::EvalClaim;

/** Start the protocol transcript, binding circuit shape and preprocessing. */
inline hash::Transcript
beginTranscript(GateSystem sys, unsigned mu,
                std::span<const pcs::Commitment> selector_comms,
                std::span<const pcs::Commitment> sigma_comms)
{
    hash::Transcript tr("zkphire-hyperplonk-v1");
    tr.appendU64("gate_system", sys == GateSystem::Vanilla ? 0 : 1);
    tr.appendU64("mu", mu);
    for (const auto &c : selector_comms)
        pcs::appendG1(tr, "selector_comm", c.point);
    for (const auto &c : sigma_comms)
        pcs::appendG1(tr, "sigma_comm", c.point);
    return tr;
}

/**
 * The mu-variable evaluation claims, in canonical order:
 * selectors@z_g, w@z_g, w@z_p, sigma@z_p, phi@z_p.
 * Tables are left empty (the prover splices them in afterwards).
 */
inline std::vector<EvalClaim>
buildClaimsA(unsigned num_selectors, unsigned num_witnesses,
             std::span<const ff::Fr> z_g, std::span<const ff::Fr> z_p,
             std::span<const ff::Fr> gate_slot_evals,
             std::span<const ff::Fr> w_at_zp,
             std::span<const ff::Fr> sigma_at_zp, const ff::Fr &phi_at_zp)
{
    std::vector<EvalClaim> claims;
    claims.reserve(num_selectors + 3 * num_witnesses + 1);
    auto add = [&](std::span<const ff::Fr> pt, const ff::Fr &val) {
        EvalClaim c;
        c.point.assign(pt.begin(), pt.end());
        c.value = val;
        claims.push_back(std::move(c));
    };
    for (unsigned s = 0; s < num_selectors; ++s)
        add(z_g, gate_slot_evals[s]);
    for (unsigned j = 0; j < num_witnesses; ++j)
        add(z_g, gate_slot_evals[num_selectors + j]);
    for (unsigned j = 0; j < num_witnesses; ++j)
        add(z_p, w_at_zp[j]);
    for (unsigned j = 0; j < num_witnesses; ++j)
        add(z_p, sigma_at_zp[j]);
    add(z_p, phi_at_zp);
    return claims;
}

/**
 * The (mu+1)-variable claims on the product-tree polynomial v, in order:
 * v(1,z_p)=pi, v(z_p,0)=p1, v(z_p,1)=p2, v(0,z_p)=phi (leaf binding), and
 * v(1..1,0)=1 (the grand product).
 */
inline std::vector<EvalClaim>
buildClaimsB(unsigned mu, std::span<const ff::Fr> z_p, const ff::Fr &pi_eval,
             const ff::Fr &p1_eval, const ff::Fr &p2_eval,
             const ff::Fr &phi_eval)
{
    std::vector<EvalClaim> claims;
    claims.reserve(5);
    auto add = [&](std::vector<ff::Fr> pt, const ff::Fr &val) {
        EvalClaim c;
        c.point = std::move(pt);
        c.value = val;
        claims.push_back(std::move(c));
    };
    std::vector<ff::Fr> pt;
    // v(1, z_p): first variable fixed to 1.
    pt.assign(1, ff::Fr::one());
    pt.insert(pt.end(), z_p.begin(), z_p.end());
    add(pt, pi_eval);
    // v(z_p, 0) and v(z_p, 1): last variable fixed.
    pt.assign(z_p.begin(), z_p.end());
    pt.push_back(ff::Fr::zero());
    add(pt, p1_eval);
    pt.assign(z_p.begin(), z_p.end());
    pt.push_back(ff::Fr::one());
    add(pt, p2_eval);
    // v(0, z_p): the leaves are phi.
    pt.assign(1, ff::Fr::zero());
    pt.insert(pt.end(), z_p.begin(), z_p.end());
    add(pt, phi_eval);
    // v(1,..,1,0): the grand product must be 1.
    add(sumcheck::rootProductPoint(mu), ff::Fr::one());
    return claims;
}

} // namespace zkphire::hyperplonk::detail

#endif // ZKPHIRE_HYPERPLONK_PROTOCOL_COMMON_HPP
