/**
 * @file
 * Binary (de)serialization of HyperPlonk proofs.
 *
 * A proof is a single message (non-interactivity); this is the wire format
 * a verifier service would consume. Layout: little-endian u32 lengths,
 * 32-byte canonical field elements, 97-byte uncompressed affine points
 * (x || y || infinity-byte). Deserialization validates structure and point
 * membership; the round-trip and tamper tests live in
 * tests/test_serialize.cpp.
 */
#ifndef ZKPHIRE_HYPERPLONK_SERIALIZE_HPP
#define ZKPHIRE_HYPERPLONK_SERIALIZE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "hyperplonk/proof.hpp"

namespace zkphire::hyperplonk {

/** Serialize a proof to bytes. */
std::vector<std::uint8_t> serializeProof(const HyperPlonkProof &proof);

/**
 * Parse a proof. Returns nullopt on malformed input (truncation, bad
 * lengths, or points not on the curve).
 */
std::optional<HyperPlonkProof>
deserializeProof(std::span<const std::uint8_t> bytes);

} // namespace zkphire::hyperplonk

#endif // ZKPHIRE_HYPERPLONK_SERIALIZE_HPP
