#include "hyperplonk/verifier.hpp"

#include "hyperplonk/protocol_common.hpp"

namespace zkphire::hyperplonk {

using sumcheck::EvalClaim;

VerifyResult
verify(const VerifyingKey &vk, const HyperPlonkProof &proof)
{
    VerifyResult res;
    auto fail = [&res](std::string msg) {
        res.ok = false;
        res.error = std::move(msg);
        return res;
    };

    const unsigned k = numWitnessCols(vk.sys);
    const unsigned num_sel = numSelectorCols(vk.sys);
    if (proof.witnessComms.size() != k)
        return fail("wrong number of witness commitments");
    if (proof.wAtZp.size() != k || proof.sigmaAtZp.size() != k)
        return fail("wrong number of auxiliary evaluations");

    hash::Transcript tr = detail::beginTranscript(
        vk.sys, vk.mu, vk.selectorComms, vk.sigmaComms);

    // ---- Step 1: absorb witness commitments ---------------------------
    for (const auto &c : proof.witnessComms)
        pcs::appendG1(tr, "w_comm", c.point);

    // ---- Step 2: Gate Identity ZeroCheck ------------------------------
    const gates::Gate &gate = coreGate(vk.sys);
    auto gate_res = sumcheck::verifyZero(gate.expr, proof.gateZC, vk.mu, tr);
    if (!gate_res.ok)
        return fail("gate ZeroCheck: " + gate_res.error);
    const std::vector<Fr> &z_g = gate_res.challenges;

    // ---- Step 3: Wire Identity ----------------------------------------
    Fr beta = tr.challengeFr("beta");
    Fr gamma = tr.challengeFr("gamma");
    pcs::appendG1(tr, "phi_comm", proof.phiComm.point);
    pcs::appendG1(tr, "v_comm", proof.vComm.point);
    Fr alpha = tr.challengeFr("alpha");

    gates::Gate perm_gate = gates::permCoreGate(k, alpha);
    auto perm_res =
        sumcheck::verifyZero(perm_gate.expr, proof.permZC, vk.mu, tr);
    if (!perm_res.ok)
        return fail("perm ZeroCheck: " + perm_res.error);
    const std::vector<Fr> &z_p = perm_res.challenges;
    // Slot order: pi p1 p2 phi D1..Dk N1..Nk.
    const std::vector<Fr> &pe = perm_res.slotEvals;
    const Fr &phi_at_zp = pe[3];

    // N/D fraction consistency: D_j = w_j + beta*sigma_j + gamma and
    // N_j = w_j + beta*id_j + gamma at z_p, with id_j computed locally.
    for (unsigned j = 0; j < k; ++j) {
        Fr d_expect = proof.wAtZp[j] + beta * proof.sigmaAtZp[j] + gamma;
        if (pe[4 + j] != d_expect)
            return fail("fraction denominator inconsistent at column " +
                        std::to_string(j));
        Fr n_expect =
            proof.wAtZp[j] + beta * evalIdMle(j, vk.mu, z_p) + gamma;
        if (pe[4 + k + j] != n_expect)
            return fail("fraction numerator inconsistent at column " +
                        std::to_string(j));
    }

    // ---- Step 4: Batch Evaluations ------------------------------------
    tr.appendFrVec("w_zp", proof.wAtZp);
    tr.appendFrVec("sigma_zp", proof.sigmaAtZp);

    std::vector<EvalClaim> claims_a = detail::buildClaimsA(
        num_sel, k, z_g, z_p, proof.gateZC.sc.finalSlotEvals, proof.wAtZp,
        proof.sigmaAtZp, phi_at_zp);
    auto open_a_res =
        sumcheck::verifyOpen(claims_a, proof.openA, vk.mu, tr);
    if (!open_a_res.ok)
        return fail("OpenCheck A: " + open_a_res.error);

    std::vector<EvalClaim> claims_b = detail::buildClaimsB(
        vk.mu, z_p, pe[0], pe[1], pe[2], phi_at_zp);
    auto open_b_res =
        sumcheck::verifyOpen(claims_b, proof.openB, vk.mu + 1, tr);
    if (!open_b_res.ok)
        return fail("OpenCheck B: " + open_b_res.error);
    // All five claims are on the same polynomial v, so their evaluations at
    // the common point must agree.
    for (std::size_t i = 1; i < open_b_res.polyEvals.size(); ++i)
        if (open_b_res.polyEvals[i] != open_b_res.polyEvals[0])
            return fail("inconsistent v evaluations in OpenCheck B");

    // ---- Step 5: PCS openings ------------------------------------------
    Fr rho = tr.challengeFr("rho_a");
    std::vector<pcs::Commitment> comms_a;
    comms_a.reserve(claims_a.size());
    for (const auto &c : vk.selectorComms)
        comms_a.push_back(c);
    for (const auto &c : proof.witnessComms)
        comms_a.push_back(c);
    for (const auto &c : proof.witnessComms)
        comms_a.push_back(c);
    for (const auto &c : vk.sigmaComms)
        comms_a.push_back(c);
    comms_a.push_back(proof.phiComm);
    if (!pcs::verifyBatchOpening(*vk.srs, comms_a, open_a_res.challenges,
                                 open_a_res.polyEvals, rho, proof.pcsA))
        return fail("PCS batch opening A failed");
    if (!pcs::verifyOpening(*vk.srs, proof.vComm, open_b_res.challenges,
                            open_b_res.polyEvals[0], proof.pcsB))
        return fail("PCS opening B (product tree) failed");

    res.ok = true;
    return res;
}

} // namespace zkphire::hyperplonk
