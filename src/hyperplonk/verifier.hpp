/**
 * @file
 * HyperPlonk verifier.
 *
 * Replays the Fiat-Shamir transcript, verifies both ZeroChecks and both
 * OpenChecks, checks the N/D fraction consistency against the wiring
 * identity polynomials (id computed locally, sigma bound by commitment),
 * checks the product-tree leaf/root bindings, and finally verifies the
 * batched PCS openings. Returns a structured result naming the first check
 * that failed, which the negative tests rely on.
 */
#ifndef ZKPHIRE_HYPERPLONK_VERIFIER_HPP
#define ZKPHIRE_HYPERPLONK_VERIFIER_HPP

#include <string>

#include "hyperplonk/prover.hpp"

namespace zkphire::hyperplonk {

/** Verification outcome. */
struct VerifyResult {
    bool ok = false;
    std::string error; ///< Empty on success; names the failed check.
};

/** Verify a HyperPlonk proof against a verifying key. */
VerifyResult verify(const VerifyingKey &vk, const HyperPlonkProof &proof);

} // namespace zkphire::hyperplonk

#endif // ZKPHIRE_HYPERPLONK_VERIFIER_HPP
