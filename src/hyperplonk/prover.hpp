/**
 * @file
 * The HyperPlonk prover: the computation zkPHIRE accelerates.
 *
 * Five steps, exactly as the paper's §IV-A describes:
 *   1. Witness Commitments      — k MSMs (MSM unit)
 *   2. Gate Identity Check      — ZeroCheck (SumCheck + Forest units)
 *   3. Wire Identity Check      — PermQuotGen + product tree + PermCheck
 *                                 ZeroCheck + 2 MSM commitments
 *   4. Batch Evaluations        — OpenChecks (Forest unit)
 *   5. Polynomial Opening       — batched PCS openings (MLE Combine + MSM)
 *
 * Per-step wall-clock timings and MSM/SumCheck statistics are recorded so
 * examples can compare the real CPU execution against the hardware model's
 * predictions.
 */
#ifndef ZKPHIRE_HYPERPLONK_PROVER_HPP
#define ZKPHIRE_HYPERPLONK_PROVER_HPP

#include "hyperplonk/circuit.hpp"
#include "hyperplonk/permutation.hpp"
#include "hyperplonk/proof.hpp"
#include "pcs/mkzg.hpp"

namespace zkphire::hyperplonk {

/** Preprocessed prover material for a fixed circuit. */
struct ProvingKey {
    GateSystem sys;
    unsigned mu = 0;
    std::vector<Mle> selectors;
    PermutationData perm;
    std::vector<pcs::Commitment> selectorComms;
    std::vector<pcs::Commitment> sigmaComms;
    const pcs::Srs *srs = nullptr;
};

/** Verifier-side preprocessed material. */
struct VerifyingKey {
    GateSystem sys;
    unsigned mu = 0;
    std::vector<pcs::Commitment> selectorComms;
    std::vector<pcs::Commitment> sigmaComms;
    const pcs::Srs *srs = nullptr;
};

/** Circuit preprocessing ("universal setup + indexing"). */
struct Keys {
    ProvingKey pk;
    VerifyingKey vk;
};
Keys setup(const Circuit &circuit, const pcs::Srs &srs);

/** Per-step prover timing (milliseconds) and kernel statistics. */
struct ProverStats {
    double witnessCommitMs = 0;
    double gateIdentityMs = 0;
    double wireIdentityMs = 0;
    double batchEvalMs = 0;
    double openingMs = 0;
    double totalMs() const
    {
        return witnessCommitMs + gateIdentityMs + wireIdentityMs +
               batchEvalMs + openingMs;
    }
    ec::MsmStats msm;
};

/**
 * Produce a HyperPlonk proof for a satisfying circuit.
 *
 * @param threads SumCheck prover worker threads.
 */
HyperPlonkProof prove(const ProvingKey &pk, const Circuit &circuit,
                      ProverStats *stats = nullptr, unsigned threads = 0);

} // namespace zkphire::hyperplonk

#endif // ZKPHIRE_HYPERPLONK_PROVER_HPP
