/**
 * @file
 * The HyperPlonk prover: the computation zkPHIRE accelerates.
 *
 * Five steps, exactly as the paper's §IV-A describes:
 *   1. Witness Commitments      — k MSMs (MSM unit)
 *   2. Gate Identity Check      — ZeroCheck (SumCheck + Forest units)
 *   3. Wire Identity Check      — PermQuotGen + product tree + PermCheck
 *                                 ZeroCheck + 2 MSM commitments
 *   4. Batch Evaluations        — OpenChecks (Forest unit)
 *   5. Polynomial Opening       — batched PCS openings (MLE Combine + MSM)
 *
 * Per-step wall-clock timings and MSM/SumCheck statistics are recorded so
 * examples can compare the real CPU execution against the hardware model's
 * predictions.
 */
#ifndef ZKPHIRE_HYPERPLONK_PROVER_HPP
#define ZKPHIRE_HYPERPLONK_PROVER_HPP

#include "hyperplonk/circuit.hpp"
#include "hyperplonk/permutation.hpp"
#include "hyperplonk/proof.hpp"
#include "pcs/mkzg.hpp"
#include "rt/cancel.hpp"
#include "rt/config.hpp"
#include "rt/unit_runner.hpp"

namespace zkphire::gates {
class PlanCache;
} // namespace zkphire::gates

namespace zkphire::hyperplonk {

/** Preprocessed prover material for a fixed circuit. */
struct ProvingKey {
    GateSystem sys;
    unsigned mu = 0;
    std::vector<Mle> selectors;
    PermutationData perm;
    std::vector<pcs::Commitment> selectorComms;
    std::vector<pcs::Commitment> sigmaComms;
    const pcs::Srs *srs = nullptr;
};

/** Verifier-side preprocessed material. */
struct VerifyingKey {
    GateSystem sys;
    unsigned mu = 0;
    std::vector<pcs::Commitment> selectorComms;
    std::vector<pcs::Commitment> sigmaComms;
    const pcs::Srs *srs = nullptr;
};

/** Circuit preprocessing ("universal setup + indexing"). */
struct Keys {
    ProvingKey pk;
    VerifyingKey vk;
};
Keys setup(const Circuit &circuit, const pcs::Srs &srs);

/** Per-step prover timing (milliseconds) and kernel statistics. */
struct ProverStats {
    double witnessCommitMs = 0;
    double gateIdentityMs = 0;
    double wireIdentityMs = 0;
    double batchEvalMs = 0;
    double openingMs = 0;
    double totalMs() const
    {
        return witnessCommitMs + gateIdentityMs + wireIdentityMs +
               batchEvalMs + openingMs;
    }
    ec::MsmStats msm;
};

/**
 * Prover-call options: the runtime config applied to every phase
 * (commitment MSMs, batch inversion, eq tables, sumchecks) plus an
 * optional compiled-plan cache for the fixed core gate.
 */
struct ProveOptions {
    /** Thread budget / grain floor / pool. Default inherits the ambient
     *  setting (ZKPHIRE_THREADS or hardware concurrency). */
    rt::Config rt;
    /** Plan cache for the core gate's masked composition; null lowers the
     *  plan inline (transcript-identical, just recompiles per call).
     *  Normally an engine::ProverContext's cache. */
    gates::PlanCache *plans = nullptr;
    /** MSM algorithm knobs applied (via ec::ScopedMsmOptions) to every MSM
     *  of the proof — commitment multi-MSMs and opening quotients. The
     *  transcript is identical under every value; only speed moves. */
    ec::MsmOptions msm = {};
    /** Cross-lane executor for the proof's independent work units
     *  (per-column commitment MSMs, per-round sumcheck range splits, the
     *  two opening chains). Null runs every unit inline. Unit outputs are
     *  merged in index order, so the transcript is bit-identical at every
     *  runner width — engine::ProofService points this at a ShardGroup of
     *  reserved idle lanes. */
    rt::UnitRunner *units = nullptr;
    /** Buffer arena (installed via poly::ScopedArena) recycling the proof's
     *  big scratch tables — sumcheck fold double buffers, opening working
     *  copies and quotients — across proofs on one context. Null inherits
     *  the ambient installation (none outside an engine context). The
     *  transcript never depends on where a buffer came from. */
    poly::BufferArena *arena = nullptr;
    /** Cooperative cancellation token, observed (via rt::ScopedCancel) at
     *  sumcheck round and streamed-commit chunk boundaries and between
     *  prover steps. A cancelled token makes the prover throw
     *  rt::OperationCancelled at the next boundary; a default token never
     *  cancels. Cancellation aborts, it never corrupts: unwinding runs the
     *  same RAII cleanup as an error path. */
    rt::CancelToken cancel;
};

/**
 * Prover state carried from the setup phase to the online phase. Owns the
 * partially-built proof (witness commitments), the Fiat-Shamir transcript
 * positioned after the witness absorption, and the synthesized witness
 * tables the online phase consumes. Movable across threads: a service lane
 * can run proveSetup, park the state in its request object, and let a
 * different lane finish with proveOnline.
 */
struct SetupState {
    HyperPlonkProof proof;
    hash::Transcript tr;
    std::vector<Mle> witness;
};

/**
 * Phase 1 ("setup"): witness synthesis + witness commitments (paper step 1).
 * The MSM-bound half of the proof; engine::ProofService schedules it as its
 * own stage so setup of one request overlaps the online phase of another.
 */
SetupState proveSetup(const ProvingKey &pk, const Circuit &circuit,
                      ProverStats *stats, const ProveOptions &opts);

/**
 * Phase 2 ("online"): sumchecks and openings (paper steps 2-5) continuing a
 * proveSetup result. prove() is exactly proveSetup + proveOnline, so the
 * two-phase path is byte-identical to the one-shot path by construction.
 */
HyperPlonkProof proveOnline(const ProvingKey &pk, SetupState state,
                            ProverStats *stats, const ProveOptions &opts);

/**
 * Produce a HyperPlonk proof for a satisfying circuit (core entry point).
 * The transcript is bit-identical under every ProveOptions value.
 */
HyperPlonkProof prove(const ProvingKey &pk, const Circuit &circuit,
                      ProverStats *stats, const ProveOptions &opts);

/**
 * One-shot convenience wrapper: proves on engine::defaultContext(), i.e.
 * default rt::Config (ZKPHIRE_THREADS honored) and the process default
 * context's plan cache. Defined in src/engine/context.cpp, above this
 * layer. Prefer an explicit engine::ProverContext for services.
 */
HyperPlonkProof prove(const ProvingKey &pk, const Circuit &circuit,
                      ProverStats *stats = nullptr);

} // namespace zkphire::hyperplonk

#endif // ZKPHIRE_HYPERPLONK_PROVER_HPP
