#include "hyperplonk/serialize.hpp"

namespace zkphire::hyperplonk {

using ff::Fr;

namespace {

class Writer
{
  public:
    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out.push_back(std::uint8_t(v >> (8 * i)));
    }

    void
    fr(const Fr &x)
    {
        std::uint8_t bytes[32];
        x.toBytesLe(bytes);
        out.insert(out.end(), bytes, bytes + 32);
    }

    void
    frVec(const std::vector<Fr> &xs)
    {
        u32(std::uint32_t(xs.size()));
        for (const Fr &x : xs)
            fr(x);
    }

    void
    frVecVec(const std::vector<std::vector<Fr>> &xss)
    {
        u32(std::uint32_t(xss.size()));
        for (const auto &xs : xss)
            frVec(xs);
    }

    void
    point(const ec::G1Affine &p)
    {
        std::uint8_t bytes[97] = {};
        if (!p.infinity) {
            p.x.toBig().toBytesLe(bytes);
            p.y.toBig().toBytesLe(bytes + 48);
            bytes[96] = 1;
        }
        out.insert(out.end(), bytes, bytes + 97);
    }

    void
    pointVec(const std::vector<ec::G1Affine> &ps)
    {
        u32(std::uint32_t(ps.size()));
        for (const auto &p : ps)
            point(p);
    }

    void
    commitment(const pcs::Commitment &c)
    {
        point(c.point);
    }

    void
    sumcheck(const sumcheck::SumcheckProof &sc)
    {
        fr(sc.claimedSum);
        frVecVec(sc.roundEvals);
        frVec(sc.finalSlotEvals);
    }

    std::vector<std::uint8_t> out;
};

class Reader
{
  public:
    explicit Reader(std::span<const std::uint8_t> b) : buf(b) {}

    bool failed() const { return bad; }

    std::uint32_t
    u32()
    {
        if (pos + 4 > buf.size()) {
            bad = true;
            return 0;
        }
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(buf[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    Fr
    fr()
    {
        if (pos + 32 > buf.size()) {
            bad = true;
            return Fr::zero();
        }
        auto big = ff::BigInt<4>::fromBytesLe(buf.data() + pos);
        pos += 32;
        if (!(big < Fr::modulus())) {
            bad = true;
            return Fr::zero();
        }
        return Fr::fromBig(big);
    }

    std::vector<Fr>
    frVec(std::size_t max_len = 1 << 20)
    {
        std::uint32_t n = u32();
        if (n > max_len) {
            bad = true;
            return {};
        }
        std::vector<Fr> xs;
        xs.reserve(n);
        for (std::uint32_t i = 0; i < n && !bad; ++i)
            xs.push_back(fr());
        return xs;
    }

    std::vector<std::vector<Fr>>
    frVecVec()
    {
        std::uint32_t n = u32();
        if (n > (1u << 16)) {
            bad = true;
            return {};
        }
        std::vector<std::vector<Fr>> xss;
        xss.reserve(n);
        for (std::uint32_t i = 0; i < n && !bad; ++i)
            xss.push_back(frVec());
        return xss;
    }

    ec::G1Affine
    point()
    {
        ec::G1Affine p;
        if (pos + 97 > buf.size()) {
            bad = true;
            return p;
        }
        std::uint8_t inf = buf[pos + 96];
        if (inf == 0) {
            p.infinity = true;
        } else {
            auto x = ff::BigInt<6>::fromBytesLe(buf.data() + pos);
            auto y = ff::BigInt<6>::fromBytesLe(buf.data() + pos + 48);
            if (!(x < ff::Fq::modulus()) || !(y < ff::Fq::modulus())) {
                bad = true;
                pos += 97;
                return p;
            }
            p.x = ff::Fq::fromBig(x);
            p.y = ff::Fq::fromBig(y);
            p.infinity = false;
            if (!p.isOnCurve())
                bad = true;
        }
        pos += 97;
        return p;
    }

    std::vector<ec::G1Affine>
    pointVec(std::size_t max_len = 1 << 12)
    {
        std::uint32_t n = u32();
        if (n > max_len) {
            bad = true;
            return {};
        }
        std::vector<ec::G1Affine> ps;
        ps.reserve(n);
        for (std::uint32_t i = 0; i < n && !bad; ++i)
            ps.push_back(point());
        return ps;
    }

    pcs::Commitment
    commitment()
    {
        return pcs::Commitment{point()};
    }

    sumcheck::SumcheckProof
    sumcheckProof()
    {
        sumcheck::SumcheckProof sc;
        sc.claimedSum = fr();
        sc.roundEvals = frVecVec();
        sc.finalSlotEvals = frVec();
        return sc;
    }

    bool
    atEnd() const
    {
        return pos == buf.size();
    }

  private:
    std::span<const std::uint8_t> buf;
    std::size_t pos = 0;
    bool bad = false;
};

constexpr std::uint32_t kMagic = 0x7a6b5048; // "zkPH"
constexpr std::uint32_t kVersion = 1;

} // namespace

std::vector<std::uint8_t>
serializeProof(const HyperPlonkProof &proof)
{
    Writer w;
    w.u32(kMagic);
    w.u32(kVersion);
    w.u32(std::uint32_t(proof.witnessComms.size()));
    for (const auto &c : proof.witnessComms)
        w.commitment(c);
    w.commitment(proof.phiComm);
    w.commitment(proof.vComm);
    w.sumcheck(proof.gateZC.sc);
    w.sumcheck(proof.permZC.sc);
    w.frVec(proof.wAtZp);
    w.frVec(proof.sigmaAtZp);
    w.sumcheck(proof.openA.sc);
    w.sumcheck(proof.openB.sc);
    w.pointVec(proof.pcsA.quotients);
    w.pointVec(proof.pcsB.quotients);
    return std::move(w.out);
}

std::optional<HyperPlonkProof>
deserializeProof(std::span<const std::uint8_t> bytes)
{
    Reader r(bytes);
    if (r.u32() != kMagic || r.u32() != kVersion)
        return std::nullopt;
    HyperPlonkProof proof;
    std::uint32_t k = r.u32();
    if (k > 16 || r.failed())
        return std::nullopt;
    for (std::uint32_t i = 0; i < k; ++i)
        proof.witnessComms.push_back(r.commitment());
    proof.phiComm = r.commitment();
    proof.vComm = r.commitment();
    proof.gateZC.sc = r.sumcheckProof();
    proof.permZC.sc = r.sumcheckProof();
    proof.wAtZp = r.frVec(64);
    proof.sigmaAtZp = r.frVec(64);
    proof.openA.sc = r.sumcheckProof();
    proof.openB.sc = r.sumcheckProof();
    proof.pcsA.quotients = r.pointVec();
    proof.pcsB.quotients = r.pointVec();
    if (r.failed() || !r.atEnd())
        return std::nullopt;
    return proof;
}

} // namespace zkphire::hyperplonk
