#include "hyperplonk/prover.hpp"

#include <cassert>
#include <chrono>

#include "hyperplonk/protocol_common.hpp"
#include "rt/parallel.hpp"

namespace zkphire::hyperplonk {

using sumcheck::EvalClaim;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Fold one unit's private MSM counters into the proof-wide stats. Units
 *  must never share one MsmStats (concurrent +=); each gets its own and the
 *  owner merges them in unit order after the batch drains. */
void
mergeMsmStats(ec::MsmStats &into, const ec::MsmStats &part)
{
    into.pointAdds += part.pointAdds;
    into.pointDoubles += part.pointDoubles;
    into.trivialScalars += part.trivialScalars;
    into.denseScalars += part.denseScalars;
    into.affineAdds += part.affineAdds;
    into.batchInversions += part.batchInversions;
    into.recodeMs += part.recodeMs;
    into.bucketMs += part.bucketMs;
    into.foldMs += part.foldMs;
}

/** True when opts carry a runner that can actually spread work. */
bool
sharded(const ProveOptions &opts)
{
    return opts.units != nullptr && opts.units->width() > 1;
}

/**
 * Commit a family of same-size columns, split into one contiguous column
 * group per runner lane. Each group is a pcs::commitBatch on that lane's
 * private pool; per-column commitments are independent of the batch
 * grouping (locked by the ec::msmBatch bit-identity tests), so the merged
 * column-ordered result equals the single commitBatch call exactly.
 */
std::vector<pcs::Commitment>
commitColumnsSharded(const pcs::Srs &srs, std::span<const Mle> polys,
                     const ProveOptions &opts, ec::MsmStats &stats)
{
    const std::size_t k = polys.size();
    const std::size_t width =
        std::min<std::size_t>(opts.units->width(), k);
    const std::size_t stride = (k + width - 1) / width;
    std::vector<std::vector<pcs::Commitment>> groups(width);
    std::vector<ec::MsmStats> groupStats(width);
    std::vector<std::function<void()>> units;
    units.reserve(width);
    for (std::size_t u = 0; u < width; ++u) {
        const std::size_t b = u * stride;
        const std::size_t e = std::min(k, b + stride);
        units.push_back([&, b, e, u] {
            if (b >= e)
                return;
            // Helper lanes have no ambient MSM options; re-apply the
            // context's knobs so every group commits the same way.
            ec::ScopedMsmOptions msmScope(opts.msm);
            groups[u] =
                pcs::commitBatch(srs, polys.subspan(b, e - b), &groupStats[u]);
        });
    }
    opts.units->run(units);
    std::vector<pcs::Commitment> comms;
    comms.reserve(k);
    for (std::size_t u = 0; u < width; ++u) {
        for (auto &c : groups[u])
            comms.push_back(c);
        mergeMsmStats(stats, groupStats[u]);
    }
    return comms;
}

} // namespace

Keys
setup(const Circuit &circuit, const pcs::Srs &srs)
{
    assert((circuit.numRows() & (circuit.numRows() - 1)) == 0 &&
           "pad the circuit to a power of two before setup");
    Keys keys;
    ProvingKey &pk = keys.pk;
    pk.sys = circuit.system();
    unsigned mu = 0;
    while ((std::size_t(1) << mu) < circuit.numRows())
        ++mu;
    pk.mu = mu;
    pk.selectors = circuit.selectorMles();
    pk.perm = buildPermutation(circuit);
    pk.srs = &srs;
    // Selector and sigma columns are same-size polynomial families over one
    // basis — exactly the multi-MSM shape, so preprocessing commits each
    // family with a single shared-point walk.
    pk.selectorComms = pcs::commitBatch(srs, pk.selectors);
    pk.sigmaComms = pcs::commitBatch(srs, pk.perm.sigma);

    VerifyingKey &vk = keys.vk;
    vk.sys = pk.sys;
    vk.mu = pk.mu;
    vk.selectorComms = pk.selectorComms;
    vk.sigmaComms = pk.sigmaComms;
    vk.srs = &srs;
    return keys;
}

SetupState
proveSetup(const ProvingKey &pk, const Circuit &circuit, ProverStats *stats,
           const ProveOptions &opts)
{
    using Clock = std::chrono::steady_clock;
    // Pin every kernel in this phase (witness synthesis, commitment MSMs);
    // a default config inherits the ambient setting.
    rt::ScopedConfig scope(opts.rt);
    ec::ScopedMsmOptions msm_scope(opts.msm);
    rt::ScopedUnitRunner unit_scope(opts.units);
    poly::ScopedArena arena_scope(opts.arena);
    rt::ScopedCancel cancel_scope(opts.cancel);
    rt::checkCancel();
    assert(circuit.system() == pk.sys);
    assert(circuit.numRows() == (std::size_t(1) << pk.mu));

    ProverStats local_stats;
    ProverStats &st = stats ? *stats : local_stats;
    const pcs::Srs &srs = *pk.srs;

    SetupState state{HyperPlonkProof{},
                     detail::beginTranscript(pk.sys, pk.mu, pk.selectorComms,
                                             pk.sigmaComms),
                     {}};

    // ---- Step 1: Witness Commitments --------------------------------
    auto t0 = Clock::now();
    state.witness = circuit.witnessMles();
    // One multi-MSM for all k columns: scalars are recoded once and the
    // Lagrange basis is walked once per window instead of k times. With a
    // shard runner the columns split into one group per lane instead
    // (per-column results are grouping-independent, so the transcript is
    // unchanged).
    if (sharded(opts) && state.witness.size() > 1)
        state.proof.witnessComms =
            commitColumnsSharded(srs, state.witness, opts, st.msm);
    else
        state.proof.witnessComms = pcs::commitBatch(srs, state.witness, &st.msm);
    for (const auto &c : state.proof.witnessComms)
        pcs::appendG1(state.tr, "w_comm", c.point);
    st.witnessCommitMs = msSince(t0);
    return state;
}

HyperPlonkProof
proveOnline(const ProvingKey &pk, SetupState setup_state, ProverStats *stats,
            const ProveOptions &opts)
{
    using Clock = std::chrono::steady_clock;
    // Pin every phase kernel (batch inversion, eq tables, sumchecks); the
    // inner sumcheck calls below pass a default rt::Config so they inherit
    // this pin rather than re-applying one. The unit-runner scope lets the
    // sumcheck round evaluations shard their pair ranges across reserved
    // lanes (sumcheck/prover.cpp).
    rt::ScopedConfig scope(opts.rt);
    ec::ScopedMsmOptions msm_scope(opts.msm);
    rt::ScopedUnitRunner unit_scope(opts.units);
    poly::ScopedArena arena_scope(opts.arena);
    rt::ScopedCancel cancel_scope(opts.cancel);
    rt::checkCancel();

    HyperPlonkProof proof = std::move(setup_state.proof);
    hash::Transcript tr = std::move(setup_state.tr);
    std::vector<Mle> witness = std::move(setup_state.witness);

    ProverStats local_stats;
    ProverStats &st = stats ? *stats : local_stats;
    const pcs::Srs &srs = *pk.srs;
    const unsigned k = numWitnessCols(pk.sys);
    assert(witness.size() == k);

    // ---- Step 2: Gate Identity Check (ZeroCheck) ---------------------
    auto t0 = Clock::now();
    const gates::Gate &gate = coreGate(pk.sys);
    std::vector<Mle> gate_tables;
    gate_tables.reserve(gate.expr.numSlots());
    for (const Mle &sel : pk.selectors)
        gate_tables.push_back(sel);
    for (const Mle &w : witness)
        gate_tables.push_back(w);
    // The core gate is fixed per gate system, so its masked plan comes from
    // the caller's (context-owned) cache — lowered once, reused across that
    // context's proofs. Without a cache it is lowered inside proveZero.
    auto gate_out = sumcheck::proveZero(
        gate.expr, std::move(gate_tables), tr, {},
        opts.plans ? opts.plans->maskedPlan(gate.expr) : nullptr);
    proof.gateZC = std::move(gate_out.proof);
    const std::vector<Fr> &z_g = gate_out.challenges;
    st.gateIdentityMs = msSince(t0);

    // ---- Step 3: Wire Identity Check ---------------------------------
    rt::checkCancel();
    t0 = Clock::now();
    Fr beta = tr.challengeFr("beta");
    Fr gamma = tr.challengeFr("gamma");
    FractionPolys fracs = buildFractionPolys(witness, pk.perm, beta, gamma);
    Mle v = sumcheck::buildProductTree(fracs.phi);
    // phi (mu vars) and v (mu+1 vars) live under different bases, so these
    // two commitments cannot share a multi-MSM.
    proof.phiComm = pcs::commit(srs, fracs.phi, &st.msm);
    proof.vComm = pcs::commit(srs, v, &st.msm);
    pcs::appendG1(tr, "phi_comm", proof.phiComm.point);
    pcs::appendG1(tr, "v_comm", proof.vComm.point);
    Fr alpha = tr.challengeFr("alpha");

    gates::Gate perm_gate = gates::permCoreGate(k, alpha);
    std::vector<Mle> perm_tables;
    perm_tables.reserve(perm_gate.expr.numSlots());
    perm_tables.push_back(sumcheck::extractPi(v));
    perm_tables.push_back(sumcheck::extractP1(v));
    perm_tables.push_back(sumcheck::extractP2(v));
    perm_tables.push_back(fracs.phi);
    for (unsigned j = 0; j < k; ++j)
        perm_tables.push_back(fracs.denom[j]);
    for (unsigned j = 0; j < k; ++j)
        perm_tables.push_back(fracs.numer[j]);
    // The PermCheck expression embeds the per-proof batching challenge
    // alpha, so its plan is lowered inline (caching it would key on alpha
    // and grow without bound).
    auto perm_out =
        sumcheck::proveZero(perm_gate.expr, std::move(perm_tables), tr);
    proof.permZC = std::move(perm_out.proof);
    const std::vector<Fr> &z_p = perm_out.challenges;
    st.wireIdentityMs = msSince(t0);

    // ---- Step 4: Batch Evaluations (OpenChecks) ----------------------
    rt::checkCancel();
    t0 = Clock::now();
    // Auxiliary claimed evaluations at z_p, absorbed before eta is drawn.
    // Each column's pair of evaluations is an independent unit: sharded,
    // column j still writes only slot j, so the absorbed vectors are
    // identical to the serial loop.
    proof.wAtZp.resize(k);
    proof.sigmaAtZp.resize(k);
    if (sharded(opts) && k > 1) {
        std::vector<std::function<void()>> units;
        units.reserve(k);
        for (unsigned j = 0; j < k; ++j)
            units.push_back([&, j] {
                proof.wAtZp[j] = witness[j].evaluate(z_p);
                proof.sigmaAtZp[j] = pk.perm.sigma[j].evaluate(z_p);
            });
        opts.units->run(units);
    } else {
        for (unsigned j = 0; j < k; ++j) {
            proof.wAtZp[j] = witness[j].evaluate(z_p);
            proof.sigmaAtZp[j] = pk.perm.sigma[j].evaluate(z_p);
        }
    }
    tr.appendFrVec("w_zp", proof.wAtZp);
    tr.appendFrVec("sigma_zp", proof.sigmaAtZp);

    const Fr phi_at_zp = proof.permZC.sc.finalSlotEvals[3];
    std::vector<EvalClaim> claims_a = detail::buildClaimsA(
        numSelectorCols(pk.sys), k, z_g, z_p,
        proof.gateZC.sc.finalSlotEvals, proof.wAtZp, proof.sigmaAtZp,
        phi_at_zp);
    // Splice in the tables in claim order.
    std::size_t ci = 0;
    for (const Mle &sel : pk.selectors)
        claims_a[ci++].table = sel;
    for (const Mle &w : witness)
        claims_a[ci++].table = w;
    for (const Mle &w : witness)
        claims_a[ci++].table = w;
    for (const Mle &sig : pk.perm.sigma)
        claims_a[ci++].table = sig;
    claims_a[ci++].table = fracs.phi;
    assert(ci == claims_a.size());

    auto open_a = sumcheck::proveOpen(std::move(claims_a), tr);
    proof.openA = std::move(open_a.proof);

    std::vector<EvalClaim> claims_b = detail::buildClaimsB(
        pk.mu, z_p, proof.permZC.sc.finalSlotEvals[0],
        proof.permZC.sc.finalSlotEvals[1], proof.permZC.sc.finalSlotEvals[2],
        phi_at_zp);
    for (auto &c : claims_b)
        c.table = v;
    auto open_b = sumcheck::proveOpen(std::move(claims_b), tr);
    proof.openB = std::move(open_b.proof);
    st.batchEvalMs = msSince(t0);

    // ---- Step 5: Polynomial Opening -----------------------------------
    rt::checkCancel();
    t0 = Clock::now();
    Fr rho = tr.challengeFr("rho_a");
    std::vector<Mle> polys_a;
    polys_a.reserve(numSelectorCols(pk.sys) + 3 * k + 1);
    for (const Mle &sel : pk.selectors)
        polys_a.push_back(sel);
    for (const Mle &w : witness)
        polys_a.push_back(w);
    for (const Mle &w : witness)
        polys_a.push_back(w);
    for (const Mle &sig : pk.perm.sigma)
        polys_a.push_back(sig);
    polys_a.push_back(fracs.phi);
    // The two opening chains cannot be level-zipped: g has mu variables but
    // v has mu+1, and each level's quotient basis depends on the variable
    // set, so the chains share no points (pcs::openMany batches same-size
    // chains when a workload has them). They ARE independent of each other
    // — both challenges are already drawn — so sharded they run as two
    // units on different lanes.
    if (sharded(opts)) {
        ec::MsmStats stats_a, stats_b;
        const std::function<void()> chains[2] = {
            [&] {
                ec::ScopedMsmOptions msmScope(opts.msm);
                proof.pcsA = pcs::batchOpen(srs, polys_a, open_a.challenges,
                                            rho, &stats_a);
            },
            [&] {
                ec::ScopedMsmOptions msmScope(opts.msm);
                proof.pcsB = pcs::open(srs, v, open_b.challenges, &stats_b);
            },
        };
        opts.units->run(chains);
        mergeMsmStats(st.msm, stats_a);
        mergeMsmStats(st.msm, stats_b);
    } else {
        proof.pcsA =
            pcs::batchOpen(srs, polys_a, open_a.challenges, rho, &st.msm);
        proof.pcsB = pcs::open(srs, v, open_b.challenges, &st.msm);
    }
    st.openingMs = msSince(t0);

    return proof;
}

HyperPlonkProof
prove(const ProvingKey &pk, const Circuit &circuit, ProverStats *stats,
      const ProveOptions &opts)
{
    return proveOnline(pk, proveSetup(pk, circuit, stats, opts), stats, opts);
}

} // namespace zkphire::hyperplonk
