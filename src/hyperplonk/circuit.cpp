#include "hyperplonk/circuit.hpp"

#include <cassert>

namespace zkphire::hyperplonk {

unsigned
numSelectorCols(GateSystem sys)
{
    return sys == GateSystem::Vanilla ? 5u : 13u;
}

unsigned
numWitnessCols(GateSystem sys)
{
    return sys == GateSystem::Vanilla ? 3u : 5u;
}

const gates::Gate &
coreGate(GateSystem sys)
{
    static const gates::Gate vanilla = gates::vanillaCoreGate();
    static const gates::Gate jellyfish = gates::jellyfishCoreGate();
    return sys == GateSystem::Vanilla ? vanilla : jellyfish;
}

Circuit::Circuit(GateSystem sys_in) : sys(sys_in)
{
    selectorCols.resize(numSelectorCols(sys));
    witnessCols.resize(numWitnessCols(sys));
}

std::size_t
Circuit::addRow(std::span<const Fr> selectors, std::span<const Fr> witnesses)
{
    assert(selectors.size() == selectorCols.size());
    assert(witnesses.size() == witnessCols.size());
    for (std::size_t i = 0; i < selectors.size(); ++i)
        selectorCols[i].push_back(selectors[i]);
    for (std::size_t i = 0; i < witnesses.size(); ++i)
        witnessCols[i].push_back(witnesses[i]);
    return rows++;
}

namespace {

const Fr &
one()
{
    static const Fr v = Fr::one();
    return v;
}

} // namespace

Cell
Circuit::addAddition(const Fr &a, const Fr &b)
{
    assert(sys == GateSystem::Vanilla);
    // qL=1 qR=1 qM=0 qO=1 qC=0 : w1 + w2 - w3 = 0.
    Fr sel[5] = {one(), one(), Fr::zero(), one(), Fr::zero()};
    Fr wit[3] = {a, b, a + b};
    std::size_t row = addRow(sel, wit);
    return Cell{2, row};
}

Cell
Circuit::addMultiplication(const Fr &a, const Fr &b)
{
    assert(sys == GateSystem::Vanilla);
    Fr sel[5] = {Fr::zero(), Fr::zero(), one(), one(), Fr::zero()};
    Fr wit[3] = {a, b, a * b};
    std::size_t row = addRow(sel, wit);
    return Cell{2, row};
}

Cell
Circuit::addConstant(const Fr &c)
{
    assert(sys == GateSystem::Vanilla);
    Fr sel[5] = {one(), Fr::zero(), Fr::zero(), Fr::zero(), c.neg()};
    Fr wit[3] = {c, Fr::zero(), Fr::zero()};
    std::size_t row = addRow(sel, wit);
    return Cell{0, row};
}

Cell
Circuit::addPow5(const Fr &a)
{
    assert(sys == GateSystem::Jellyfish);
    // Selector order: q1..q4 qM1 qM2 qH1..qH4 qO qecc qC.
    std::vector<Fr> sel(13, Fr::zero());
    sel[6] = one();  // qH1
    sel[10] = one(); // qO
    Fr a5 = a * a * a * a * a;
    Fr wit[5] = {a, Fr::zero(), Fr::zero(), Fr::zero(), a5};
    std::size_t row = addRow(sel, wit);
    return Cell{4, row};
}

Cell
Circuit::addFma(const Fr &w1, const Fr &w2, const Fr &w3, const Fr &w4,
                std::span<const Fr, 6> q)
{
    assert(sys == GateSystem::Jellyfish);
    std::vector<Fr> sel(13, Fr::zero());
    for (int i = 0; i < 4; ++i)
        sel[i] = q[i];
    sel[4] = q[4]; // qM1
    sel[5] = q[5]; // qM2
    sel[10] = one(); // qO
    Fr out = q[0] * w1 + q[1] * w2 + q[2] * w3 + q[3] * w4 +
             q[4] * w1 * w2 + q[5] * w3 * w4;
    Fr wit[5] = {w1, w2, w3, w4, out};
    std::size_t row = addRow(sel, wit);
    return Cell{4, row};
}

Cell
Circuit::addLinearCombination(std::span<const Fr, 4> w,
                              std::span<const Fr, 4> q, const Fr &c)
{
    assert(sys == GateSystem::Jellyfish);
    std::vector<Fr> sel(13, Fr::zero());
    Fr out = c;
    for (int i = 0; i < 4; ++i) {
        sel[i] = q[i];
        out += q[i] * w[i];
    }
    sel[10] = one(); // qO
    sel[12] = c;     // qC
    Fr wit[5] = {w[0], w[1], w[2], w[3], out};
    std::size_t row = addRow(sel, wit);
    return Cell{4, row};
}

Cell
Circuit::addInput(const Fr &value)
{
    assert(sys == GateSystem::Jellyfish);
    std::vector<Fr> sel(13, Fr::zero());
    Fr wit[5] = {value, Fr::zero(), Fr::zero(), Fr::zero(), Fr::zero()};
    std::size_t row = addRow(sel, wit);
    return Cell{0, row};
}

Cell
Circuit::addZero()
{
    assert(sys == GateSystem::Jellyfish);
    std::vector<Fr> sel(13, Fr::zero());
    sel[10] = one(); // qO: -w5 = 0
    Fr wit[5] = {Fr::zero(), Fr::zero(), Fr::zero(), Fr::zero(),
                 Fr::zero()};
    std::size_t row = addRow(sel, wit);
    return Cell{4, row};
}

Cell
Circuit::addPinned(const Fr &c)
{
    assert(sys == GateSystem::Jellyfish);
    std::vector<Fr> sel(13, Fr::zero());
    sel[0] = one();   // q1
    sel[12] = c.neg(); // qC: w1 - c = 0
    Fr wit[5] = {c, Fr::zero(), Fr::zero(), Fr::zero(), Fr::zero()};
    std::size_t row = addRow(sel, wit);
    return Cell{0, row};
}

void
Circuit::copy(Cell a, Cell b)
{
    assert(a.col < witnessCols.size() && a.row < rows);
    assert(b.col < witnessCols.size() && b.row < rows);
    assert(witness(a) == witness(b) &&
           "copy constraint between unequal witness values");
    copyPairs.emplace_back(a, b);
}

unsigned
Circuit::padToPowerOfTwo()
{
    std::size_t target = 1;
    unsigned mu = 0;
    while (target < rows) {
        target <<= 1;
        ++mu;
    }
    std::vector<Fr> zero_sel(selectorCols.size(), Fr::zero());
    std::vector<Fr> zero_wit(witnessCols.size(), Fr::zero());
    while (rows < target)
        addRow(zero_sel, zero_wit);
    return mu;
}

std::vector<Mle>
Circuit::selectorMles() const
{
    std::vector<Mle> out;
    out.reserve(selectorCols.size());
    for (const auto &col : selectorCols)
        out.emplace_back(col);
    return out;
}

std::vector<Mle>
Circuit::witnessMles() const
{
    std::vector<Mle> out;
    out.reserve(witnessCols.size());
    for (const auto &col : witnessCols)
        out.emplace_back(col);
    return out;
}

bool
Circuit::gatesSatisfied() const
{
    const gates::Gate &gate = coreGate(sys);
    std::vector<Fr> slot_vals(gate.expr.numSlots());
    for (std::size_t r = 0; r < rows; ++r) {
        std::size_t s = 0;
        for (const auto &col : selectorCols)
            slot_vals[s++] = col[r];
        for (const auto &col : witnessCols)
            slot_vals[s++] = col[r];
        if (!gate.expr.evaluate(slot_vals).isZero())
            return false;
    }
    return true;
}

bool
Circuit::copiesSatisfied() const
{
    for (const auto &[a, b] : copyPairs)
        if (witness(a) != witness(b))
            return false;
    return true;
}

Circuit
randomVanillaCircuit(unsigned mu, ff::Rng &rng)
{
    Circuit c(GateSystem::Vanilla);
    const std::size_t n = std::size_t(1) << mu;
    std::vector<Cell> outputs;
    outputs.reserve(n);
    bool reuse_a = false, reuse_b = false;
    Cell src_a{}, src_b{};
    auto pick_input = [&](bool &reused, Cell &src) -> Fr {
        // Reuse an earlier output half the time (creates real wiring).
        if (!outputs.empty() && rng.nextBelow(2) == 0) {
            src = outputs[rng.nextBelow(outputs.size())];
            reused = true;
            return c.witness(src);
        }
        reused = false;
        return Fr::random(rng);
    };
    for (std::size_t i = 0; i < n; ++i) {
        Fr a = pick_input(reuse_a, src_a);
        Fr b = pick_input(reuse_b, src_b);
        Cell out;
        switch (rng.nextBelow(3)) {
          case 0:
            out = c.addAddition(a, b);
            break;
          case 1:
            out = c.addMultiplication(a, b);
            break;
          default:
            out = c.addConstant(a);
            reuse_b = false;
            break;
        }
        if (reuse_a)
            c.copy(src_a, Cell{0, out.row});
        if (reuse_b)
            c.copy(src_b, Cell{1, out.row});
        outputs.push_back(out);
    }
    return c;
}

Circuit
randomJellyfishCircuit(unsigned mu, ff::Rng &rng)
{
    Circuit c(GateSystem::Jellyfish);
    const std::size_t n = std::size_t(1) << mu;
    std::vector<Cell> outputs;
    outputs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Fr a = Fr::random(rng);
        Cell src{};
        bool reused = false;
        if (!outputs.empty() && rng.nextBelow(2) == 0) {
            src = outputs[rng.nextBelow(outputs.size())];
            a = c.witness(src);
            reused = true;
        }
        Cell out;
        if (rng.nextBelow(2) == 0) {
            out = c.addPow5(a);
            if (reused)
                c.copy(src, Cell{0, out.row});
        } else {
            Fr q[6] = {Fr::random(rng), Fr::random(rng), Fr::random(rng),
                       Fr::random(rng), Fr::one(),       Fr::one()};
            out = c.addFma(a, Fr::random(rng), Fr::random(rng),
                           Fr::random(rng), std::span<const Fr, 6>(q, 6));
            if (reused)
                c.copy(src, Cell{0, out.row});
        }
        outputs.push_back(out);
    }
    return c;
}

} // namespace zkphire::hyperplonk
