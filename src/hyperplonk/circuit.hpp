/**
 * @file
 * Plonkish circuits for HyperPlonk: Vanilla (3 witness columns, 5 selectors)
 * and Jellyfish (5 witness columns, 13 selectors) gate systems, with copy
 * constraints ("wiring") enforced by the permutation argument.
 *
 * Rows carry both selector values and a full witness assignment; gadget
 * helpers (addAddition, addMultiplication, addPow5, ...) compute outputs so
 * examples and tests can build satisfying circuits declaratively. Synthetic
 * generators produce satisfying circuits with realistic wiring and sparsity
 * for benchmarking, mirroring how the paper synthesizes workloads from
 * published gate counts.
 */
#ifndef ZKPHIRE_HYPERPLONK_CIRCUIT_HPP
#define ZKPHIRE_HYPERPLONK_CIRCUIT_HPP

#include <cstdint>
#include <vector>

#include "ff/rng.hpp"
#include "gates/gate_library.hpp"
#include "poly/mle.hpp"

namespace zkphire::hyperplonk {

using ff::Fr;
using poly::Mle;

/** Which Plonkish arithmetization the circuit uses. */
enum class GateSystem { Vanilla, Jellyfish };

/** Selector / witness column counts per gate system. */
unsigned numSelectorCols(GateSystem sys);
unsigned numWitnessCols(GateSystem sys);

/**
 * The circuit's core constraint expression (no f_r), slot order
 * [selectors..., witnesses...], matching Circuit column order.
 */
const gates::Gate &coreGate(GateSystem sys);

/** A witness cell: column j of row i. */
struct Cell {
    unsigned col = 0;
    std::size_t row = 0;
    bool operator==(const Cell &o) const = default;
};

/**
 * A Plonkish circuit with a complete (satisfying) witness assignment.
 */
class Circuit
{
  public:
    explicit Circuit(GateSystem sys);

    GateSystem system() const { return sys; }
    std::size_t numRows() const { return rows; }
    unsigned numSelectors() const { return unsigned(selectorCols.size()); }
    unsigned numWitnesses() const { return unsigned(witnessCols.size()); }

    /**
     * Append a raw row. selector/witness spans must match the gate system's
     * column counts. Returns the row index.
     */
    std::size_t addRow(std::span<const Fr> selectors,
                       std::span<const Fr> witnesses);

    /** Vanilla gadget: w3 = w1 + w2. Returns the output cell. */
    Cell addAddition(const Fr &a, const Fr &b);
    /** Vanilla gadget: w3 = w1 * w2. */
    Cell addMultiplication(const Fr &a, const Fr &b);
    /** Vanilla gadget: pins w1 == c (qL = 1, qC = -c). */
    Cell addConstant(const Fr &c);
    /** Jellyfish gadget: w5 = w1^5 (the Rescue/Poseidon S-box). */
    Cell addPow5(const Fr &a);
    /**
     * Jellyfish gadget: w5 = sum q_i w_i + qM1 w1 w2 + qM2 w3 w4 with the
     * given linear selectors (a fused multiply-add row).
     */
    Cell addFma(const Fr &w1, const Fr &w2, const Fr &w3, const Fr &w4,
                std::span<const Fr, 6> q);
    /**
     * Jellyfish gadget: w5 = q1 w1 + q2 w2 + q3 w3 + q4 w4 + c — an affine
     * layer row (e.g. one MDS output lane of an AOH permutation).
     */
    Cell addLinearCombination(std::span<const Fr, 4> w,
                              std::span<const Fr, 4> q, const Fr &c);
    /** Jellyfish gadget: an unconstrained private input in w1. */
    Cell addInput(const Fr &value);
    /** Jellyfish gadget: a cell constrained to zero (in w5). */
    Cell addZero();
    /** Jellyfish gadget: pin cell value == c (q1 = 1, qC = -c). */
    Cell addPinned(const Fr &c);

    /** Enforce witness equality between two cells (a copy constraint). */
    void copy(Cell a, Cell b);

    /** Pad with no-op rows to the next power of two; returns mu = log2 N. */
    unsigned padToPowerOfTwo();

    /** Witness/selector accessors. */
    const Fr &witness(Cell c) const { return witnessCols[c.col][c.row]; }
    const std::vector<std::vector<Fr>> &selectors() const
    {
        return selectorCols;
    }
    const std::vector<std::vector<Fr>> &witnesses() const
    {
        return witnessCols;
    }
    const std::vector<std::pair<Cell, Cell>> &copies() const
    {
        return copyPairs;
    }

    /** Columns as MLEs (requires power-of-two rows). */
    std::vector<Mle> selectorMles() const;
    std::vector<Mle> witnessMles() const;

    /** Does every row satisfy the core gate constraint? */
    bool gatesSatisfied() const;
    /** Do all copy constraints hold on the witness? */
    bool copiesSatisfied() const;

  private:
    GateSystem sys;
    std::size_t rows = 0;
    std::vector<std::vector<Fr>> selectorCols;
    std::vector<std::vector<Fr>> witnessCols;
    std::vector<std::pair<Cell, Cell>> copyPairs;
};

/**
 * Synthetic satisfying Vanilla circuit with 2^mu rows: random mix of
 * additions, multiplications, and constants, with ~half of the gate inputs
 * wired to earlier outputs (creating real copy constraints), mimicking the
 * structure and sparsity of the paper's workloads.
 */
Circuit randomVanillaCircuit(unsigned mu, ff::Rng &rng);

/** Synthetic satisfying Jellyfish circuit (pow5, FMA, and ECC-ish rows). */
Circuit randomJellyfishCircuit(unsigned mu, ff::Rng &rng);

} // namespace zkphire::hyperplonk

#endif // ZKPHIRE_HYPERPLONK_CIRCUIT_HPP
