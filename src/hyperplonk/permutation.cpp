#include "hyperplonk/permutation.hpp"

#include <cassert>
#include <numeric>

#include "ff/batch_inverse.hpp"

namespace zkphire::hyperplonk {

namespace {

/** Union-find with path compression over global cell ids. */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n) : parent(n)
    {
        std::iota(parent.begin(), parent.end(), 0);
    }

    std::size_t
    find(std::size_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    void
    unite(std::size_t a, std::size_t b)
    {
        parent[find(a)] = find(b);
    }

  private:
    std::vector<std::size_t> parent;
};

} // namespace

PermutationData
buildPermutation(const Circuit &circuit)
{
    const std::size_t n = circuit.numRows();
    const unsigned k = circuit.numWitnesses();
    assert((n & (n - 1)) == 0 && "pad the circuit to a power of two first");

    auto cell_id = [n](Cell c) { return std::size_t(c.col) * n + c.row; };

    UnionFind uf(k * n);
    for (const auto &[a, b] : circuit.copies())
        uf.unite(cell_id(a), cell_id(b));

    // Group cells by representative, then wire each class into one cycle.
    std::vector<std::size_t> sigma_flat(k * n);
    std::iota(sigma_flat.begin(), sigma_flat.end(), 0);
    std::vector<std::vector<std::size_t>> classes(k * n);
    for (std::size_t c = 0; c < k * n; ++c)
        classes[uf.find(c)].push_back(c);
    for (const auto &members : classes) {
        if (members.size() < 2)
            continue;
        for (std::size_t i = 0; i < members.size(); ++i)
            sigma_flat[members[i]] = members[(i + 1) % members.size()];
    }

    PermutationData out;
    unsigned mu = 0;
    while ((std::size_t(1) << mu) < n)
        ++mu;
    for (unsigned j = 0; j < k; ++j) {
        Mle id_mle(mu), sigma_mle(mu);
        for (std::size_t x = 0; x < n; ++x) {
            id_mle[x] = Fr::fromU64(std::uint64_t(j) * n + x);
            sigma_mle[x] = Fr::fromU64(sigma_flat[std::size_t(j) * n + x]);
        }
        out.id.push_back(std::move(id_mle));
        out.sigma.push_back(std::move(sigma_mle));
    }
    return out;
}

FractionPolys
buildFractionPolys(const std::vector<Mle> &witness,
                   const PermutationData &perm, const Fr &beta,
                   const Fr &gamma)
{
    const unsigned k = unsigned(witness.size());
    assert(perm.id.size() == k && perm.sigma.size() == k);
    const std::size_t n = witness[0].size();

    FractionPolys out;
    for (unsigned j = 0; j < k; ++j) {
        Mle nj(witness[j].numVars()), dj(witness[j].numVars());
        for (std::size_t x = 0; x < n; ++x) {
            nj[x] = witness[j][x] + beta * perm.id[j][x] + gamma;
            dj[x] = witness[j][x] + beta * perm.sigma[j][x] + gamma;
        }
        out.numer.push_back(std::move(nj));
        out.denom.push_back(std::move(dj));
    }

    // phi = prod N / prod D with one batched inversion (PermQuotGen-style).
    std::vector<Fr> denom_prod(n, Fr::one());
    std::vector<Fr> numer_prod(n, Fr::one());
    for (unsigned j = 0; j < k; ++j)
        for (std::size_t x = 0; x < n; ++x) {
            numer_prod[x] *= out.numer[j][x];
            denom_prod[x] *= out.denom[j][x];
        }
    ff::batchInverseInPlace(std::span<Fr>(denom_prod));
    std::vector<Fr> phi(n);
    for (std::size_t x = 0; x < n; ++x)
        phi[x] = numer_prod[x] * denom_prod[x];
    out.phi = Mle(std::move(phi));
    return out;
}

Fr
evalIdMle(unsigned col, unsigned mu, std::span<const Fr> point)
{
    assert(point.size() == mu);
    Fr acc = Fr::fromU64(std::uint64_t(col) << mu);
    Fr pow2 = Fr::one();
    for (unsigned i = 0; i < mu; ++i) {
        acc += pow2 * point[i];
        pow2 = pow2.dbl();
    }
    return acc;
}

} // namespace zkphire::hyperplonk
