/**
 * @file
 * Structured reference string for the multilinear KZG (PST13) commitment
 * scheme HyperPlonk uses.
 *
 * The SRS holds the Lagrange-basis G1 points L_i = eq(tau, bits(i)) * G for
 * the full variable vector and for every variable suffix (the bases the
 * per-variable quotient proofs are committed under). tau itself is retained
 * as the *simulation trapdoor*: the paper's accelerator only ever runs the
 * prover, and our testing verifier checks the KZG identity directly in G1
 * using tau instead of a pairing (see DESIGN.md substitutions). A production
 * deployment would discard tau and verify with a pairing over G2 elements.
 */
#ifndef ZKPHIRE_PCS_SRS_HPP
#define ZKPHIRE_PCS_SRS_HPP

#include <map>
#include <memory>
#include <vector>

#include "ec/fixed_base.hpp"
#include "ec/g1.hpp"
#include "hash/transcript.hpp"

namespace zkphire::pcs {

using ec::G1Affine;
using ec::G1Jacobian;
using ff::Fr;

/** Lagrange bases for one polynomial size mu. */
struct LevelBases {
    /**
     * suffix[s] = basis over (tau_s .. tau_{mu-1}), size 2^(mu-s).
     * suffix[0] commits mu-variable polynomials; suffix[mu] = {G}.
     */
    std::vector<std::vector<G1Affine>> suffix;
};

/**
 * Universal SRS supporting polynomials of up to maxVars variables.
 */
class Srs
{
  public:
    /** Run the (simulated) universal setup ceremony. */
    static Srs generate(unsigned max_vars, ff::Rng &rng);

    unsigned maxVars() const { return unsigned(tauVec.size()); }
    const std::vector<Fr> &tau() const { return tauVec; }

    /** Lagrange bases for mu-variable polynomials (built lazily, cached). */
    const LevelBases &basesFor(unsigned mu) const;

    /** The G1 generator the bases are built over. */
    const G1Affine &generator() const { return gen; }

  private:
    std::vector<Fr> tauVec;
    G1Affine gen;
    std::unique_ptr<ec::FixedBaseMul> genMul;
    mutable std::map<unsigned, LevelBases> cache;
};

/** Absorb a G1 point into a Fiat-Shamir transcript (x || y || inf byte). */
void appendG1(hash::Transcript &tr, std::string_view label, const G1Affine &p);

} // namespace zkphire::pcs

#endif // ZKPHIRE_PCS_SRS_HPP
