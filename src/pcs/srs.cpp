#include "pcs/srs.hpp"

#include <cassert>

#include "poly/mle.hpp"
#include "rt/parallel.hpp"

namespace zkphire::pcs {

Srs
Srs::generate(unsigned max_vars, ff::Rng &rng)
{
    Srs srs;
    srs.tauVec.reserve(max_vars);
    for (unsigned i = 0; i < max_vars; ++i)
        srs.tauVec.push_back(Fr::random(rng));
    srs.gen = ec::g1Generator();
    srs.genMul = std::make_unique<ec::FixedBaseMul>(srs.gen);
    return srs;
}

const LevelBases &
Srs::basesFor(unsigned mu) const
{
    assert(mu <= maxVars() && "polynomial larger than SRS supports");
    auto it = cache.find(mu);
    if (it != cache.end())
        return it->second;

    LevelBases level;
    level.suffix.resize(mu + 1);
    for (unsigned s = 0; s <= mu; ++s) {
        // eq table over (tau_s .. tau_{mu-1}) in the scalar field, then
        // lifted into the exponent with fixed-base multiplications.
        std::vector<Fr> suffix_tau(tauVec.begin() + s, tauVec.begin() + mu);
        poly::Mle eq = poly::Mle::eqTable(suffix_tau);
        // Fixed-base multiplies are independent; normalization shares one
        // inversion across the level instead of one per point.
        std::vector<G1Jacobian> jac(eq.size());
        rt::parallelFor(
            0, eq.size(), [&](std::size_t i) { jac[i] = genMul->mul(eq[i]); },
            0, 16);
        level.suffix[s] = ec::batchToAffine(jac);
    }
    return cache.emplace(mu, std::move(level)).first->second;
}

void
appendG1(hash::Transcript &tr, std::string_view label, const G1Affine &p)
{
    std::uint8_t bytes[2 * 48 + 1] = {};
    if (!p.infinity) {
        p.x.toBig().toBytesLe(bytes);
        p.y.toBig().toBytesLe(bytes + 48);
        bytes[96] = 1;
    }
    tr.appendBytes(label, bytes);
}

} // namespace zkphire::pcs
