#include "pcs/mkzg.hpp"

#include <cassert>

#include "ff/vec_ops.hpp"
#include "rt/parallel.hpp"

namespace zkphire::pcs {

Commitment
commit(const Srs &srs, const Mle &poly, ec::MsmStats *stats)
{
    const LevelBases &bases = srs.basesFor(poly.numVars());
    G1Jacobian c = ec::msmPippenger(poly.evals(), bases.suffix[0], 0, stats);
    return Commitment{c.toAffine()};
}

std::vector<Commitment>
commitBatch(const Srs &srs, std::span<const Mle *const> polys,
            ec::MsmStats *stats)
{
    std::vector<Commitment> out;
    out.reserve(polys.size());
    if (polys.empty())
        return out;
    // The multi-MSM needs one shared basis; a mixed-size family degrades
    // to per-polynomial commits (same results, no sharing) rather than
    // committing everything against polys[0]'s basis.
    const unsigned mu = polys[0]->numVars();
    for (const Mle *p : polys) {
        if (p->numVars() != mu) {
            for (const Mle *q : polys)
                out.push_back(commit(srs, *q, stats));
            return out;
        }
    }
    std::vector<std::span<const Fr>> cols;
    cols.reserve(polys.size());
    for (const Mle *p : polys)
        cols.push_back(p->evals());
    const LevelBases &bases = srs.basesFor(mu);
    for (const G1Jacobian &c : ec::msmBatch(cols, bases.suffix[0],
                                            ec::currentMsmOptions(), stats))
        out.push_back(Commitment{c.toAffine()});
    return out;
}

std::vector<Commitment>
commitBatch(const Srs &srs, std::span<const Mle> polys, ec::MsmStats *stats)
{
    std::vector<const Mle *> ptrs;
    ptrs.reserve(polys.size());
    for (const Mle &p : polys)
        ptrs.push_back(&p);
    return commitBatch(srs, std::span<const Mle *const>(ptrs), stats);
}

OpeningProof
open(const Srs &srs, const Mle &poly, std::span<const Fr> z,
     ec::MsmStats *stats)
{
    const Mle *polys[] = {&poly};
    const std::span<const Fr> zs[] = {z};
    return std::move(openMany(srs, polys, zs, stats)[0]);
}

std::vector<OpeningProof>
openMany(const Srs &srs, std::span<const Mle *const> polys,
         std::span<const std::span<const Fr>> zs, ec::MsmStats *stats)
{
    const std::size_t m = polys.size();
    assert(zs.size() == m);
    std::vector<OpeningProof> proofs(m);
    if (m == 0)
        return proofs;
    const unsigned mu = polys[0]->numVars();
    if (m > 1) {
        // Level-zipping needs one variable count; mixed-size chains
        // degrade to independent openings (same proofs, no sharing).
        for (std::size_t i = 0; i < m; ++i) {
            if (polys[i]->numVars() != mu) {
                for (std::size_t j = 0; j < m; ++j)
                    proofs[j] = open(srs, *polys[j], zs[j], stats);
                return proofs;
            }
        }
    }
    const LevelBases &bases = srs.basesFor(mu);

    std::vector<Mle> cur;
    cur.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
        assert(zs[i].size() == mu && "opening point dimension mismatch");
        proofs[i].quotients.reserve(mu);
        cur.push_back(*polys[i]);
    }

    std::vector<std::vector<Fr>> q(m);
    std::vector<std::vector<Fr>> fold_scratch(m); // double buffers, reused
    std::vector<std::span<const Fr>> cols(m);
    for (unsigned k = 0; k < mu; ++k) {
        // q_k(X_{k+1}..) = cur(1, X..) - cur(0, X..): adjacent differences,
        // then ONE multi-MSM over the shared suffix basis for every chain.
        const std::size_t half = cur[0].size() / 2;
        for (std::size_t i = 0; i < m; ++i) {
            q[i].resize(half);
            const Mle &c = cur[i];
            std::vector<Fr> &qi = q[i];
            rt::parallelFor(
                0, half,
                [&](std::size_t j) { qi[j] = c[2 * j + 1] - c[2 * j]; },
                /*grain=*/0, /*minGrain=*/1024);
            cols[i] = qi;
        }
        std::vector<G1Jacobian> pis =
            ec::msmBatch(cols, bases.suffix[k + 1], ec::currentMsmOptions(),
                         stats);
        for (std::size_t i = 0; i < m; ++i) {
            proofs[i].quotients.push_back(pis[i].toAffine());
            cur[i].fixFirstVarInPlace(zs[i][k], fold_scratch[i]);
        }
    }
    return proofs;
}

bool
verifyOpening(const Srs &srs, const Commitment &c, std::span<const Fr> z,
              const Fr &value, const OpeningProof &proof)
{
    const unsigned mu = unsigned(z.size());
    if (proof.quotients.size() != mu)
        return false;
    // C - value * G == Sum_k (tau_k - z_k) * pi_k, checked in G1 with the
    // simulation trapdoor tau (testing-only; production uses a pairing).
    G1Jacobian lhs = G1Jacobian::fromAffine(c.point)
                         .add(G1Jacobian::fromAffine(srs.generator())
                                  .mulScalar(value)
                                  .neg());
    G1Jacobian rhs = G1Jacobian::identity();
    for (unsigned k = 0; k < mu; ++k) {
        Fr coeff = srs.tau()[k] - z[k];
        rhs = rhs.add(
            G1Jacobian::fromAffine(proof.quotients[k]).mulScalar(coeff));
    }
    return lhs == rhs;
}

Mle
combineForBatchOpen(std::span<const Mle> polys, const Fr &rho)
{
    assert(!polys.empty());
    const unsigned mu = polys[0].numVars();
    // g = Sum_i rho^i f_i, combined entry-parallel: each chunk walks the
    // opened polynomials in claim order, so every entry sees the exact
    // serial accumulation sequence (bit-identical at any thread count)
    // while the chunks — the per-opening work — run concurrently.
    std::vector<Fr> powers(polys.size());
    Fr coeff = Fr::one();
    for (std::size_t i = 0; i < polys.size(); ++i) {
        assert(polys[i].numVars() == mu);
        powers[i] = coeff;
        coeff *= rho;
    }
    Mle g(mu);
    rt::parallelForChunks(
        0, g.size(),
        [&](std::size_t b, std::size_t e) {
            for (std::size_t i = 0; i < polys.size(); ++i) {
                const Mle &f = polys[i];
                const Fr c = powers[i];
                // Fused multiply-accumulate span over the unrolled field
                // kernels; rho^0 == 1 skips its multiply pass outright
                // (1 * x is exactly x in canonical Montgomery form).
                if (c.isOne())
                    ff::addVec(&g[b], &f[b], e - b);
                else
                    ff::addMulVec(&g[b], c, &f[b], e - b);
            }
        },
        /*grain=*/0, /*minGrain=*/1024);
    return g;
}

OpeningProof
batchOpen(const Srs &srs, std::span<const Mle> polys, std::span<const Fr> z,
          const Fr &rho, ec::MsmStats *stats)
{
    Mle g = combineForBatchOpen(polys, rho);
    return open(srs, g, z, stats);
}

bool
verifyBatchOpening(const Srs &srs, std::span<const Commitment> cs,
                   std::span<const Fr> z, std::span<const Fr> values,
                   const Fr &rho, const OpeningProof &proof)
{
    assert(cs.size() == values.size());
    // Combined commitment and value via linearity.
    G1Jacobian c = G1Jacobian::identity();
    Fr v = Fr::zero();
    Fr coeff = Fr::one();
    for (std::size_t i = 0; i < cs.size(); ++i) {
        c = c.add(G1Jacobian::fromAffine(cs[i].point).mulScalar(coeff));
        v += coeff * values[i];
        coeff *= rho;
    }
    return verifyOpening(srs, Commitment{c.toAffine()}, z, v, proof);
}

} // namespace zkphire::pcs
