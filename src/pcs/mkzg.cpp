#include "pcs/mkzg.hpp"

#include <cassert>

#include "rt/parallel.hpp"

namespace zkphire::pcs {

Commitment
commit(const Srs &srs, const Mle &poly, ec::MsmStats *stats)
{
    const LevelBases &bases = srs.basesFor(poly.numVars());
    G1Jacobian c = ec::msmPippenger(poly.evals(), bases.suffix[0], 0, stats);
    return Commitment{c.toAffine()};
}

OpeningProof
open(const Srs &srs, const Mle &poly, std::span<const Fr> z,
     ec::MsmStats *stats)
{
    const unsigned mu = poly.numVars();
    assert(z.size() == mu);
    const LevelBases &bases = srs.basesFor(mu);

    OpeningProof proof;
    proof.quotients.reserve(mu);
    Mle cur = poly;
    std::vector<Fr> fold_scratch; // double buffer reused across all levels
    for (unsigned k = 0; k < mu; ++k) {
        // q_k(X_{k+1}..) = cur(1, X..) - cur(0, X..): adjacent differences.
        const std::size_t half = cur.size() / 2;
        std::vector<Fr> q(half);
        rt::parallelFor(
            0, half,
            [&](std::size_t j) { q[j] = cur[2 * j + 1] - cur[2 * j]; },
            /*grain=*/0, /*minGrain=*/1024);
        G1Jacobian pi =
            ec::msmPippenger(q, bases.suffix[k + 1], 0, stats);
        proof.quotients.push_back(pi.toAffine());
        cur.fixFirstVarInPlace(z[k], fold_scratch);
    }
    return proof;
}

bool
verifyOpening(const Srs &srs, const Commitment &c, std::span<const Fr> z,
              const Fr &value, const OpeningProof &proof)
{
    const unsigned mu = unsigned(z.size());
    if (proof.quotients.size() != mu)
        return false;
    // C - value * G == Sum_k (tau_k - z_k) * pi_k, checked in G1 with the
    // simulation trapdoor tau (testing-only; production uses a pairing).
    G1Jacobian lhs = G1Jacobian::fromAffine(c.point)
                         .add(G1Jacobian::fromAffine(srs.generator())
                                  .mulScalar(value)
                                  .neg());
    G1Jacobian rhs = G1Jacobian::identity();
    for (unsigned k = 0; k < mu; ++k) {
        Fr coeff = srs.tau()[k] - z[k];
        rhs = rhs.add(
            G1Jacobian::fromAffine(proof.quotients[k]).mulScalar(coeff));
    }
    return lhs == rhs;
}

OpeningProof
batchOpen(const Srs &srs, std::span<const Mle> polys, std::span<const Fr> z,
          const Fr &rho, ec::MsmStats *stats)
{
    assert(!polys.empty());
    const unsigned mu = polys[0].numVars();
    // g = Sum_i rho^i f_i, combined entry-parallel: each chunk walks the
    // opened polynomials in claim order, so every entry sees the exact
    // serial accumulation sequence (bit-identical at any thread count)
    // while the chunks — the per-opening work — run concurrently.
    std::vector<Fr> powers(polys.size());
    Fr coeff = Fr::one();
    for (std::size_t i = 0; i < polys.size(); ++i) {
        assert(polys[i].numVars() == mu);
        powers[i] = coeff;
        coeff *= rho;
    }
    Mle g(mu);
    rt::parallelForChunks(
        0, g.size(),
        [&](std::size_t b, std::size_t e) {
            for (std::size_t i = 0; i < polys.size(); ++i) {
                const Mle &f = polys[i];
                const Fr c = powers[i];
                for (std::size_t j = b; j < e; ++j)
                    g[j] += c * f[j];
            }
        },
        /*grain=*/0, /*minGrain=*/1024);
    return open(srs, g, z, stats);
}

bool
verifyBatchOpening(const Srs &srs, std::span<const Commitment> cs,
                   std::span<const Fr> z, std::span<const Fr> values,
                   const Fr &rho, const OpeningProof &proof)
{
    assert(cs.size() == values.size());
    // Combined commitment and value via linearity.
    G1Jacobian c = G1Jacobian::identity();
    Fr v = Fr::zero();
    Fr coeff = Fr::one();
    for (std::size_t i = 0; i < cs.size(); ++i) {
        c = c.add(G1Jacobian::fromAffine(cs[i].point).mulScalar(coeff));
        v += coeff * values[i];
        coeff *= rho;
    }
    return verifyOpening(srs, Commitment{c.toAffine()}, z, v, proof);
}

} // namespace zkphire::pcs
