#include "pcs/mkzg.hpp"

#include <algorithm>
#include <cassert>
#include <future>

#include "ff/vec_ops.hpp"
#include "rt/cancel.hpp"
#include "rt/failpoint.hpp"
#include "rt/parallel.hpp"

namespace zkphire::pcs {

namespace {

using zkphire::poly::FrTable;

/** Streaming-walk chunk size for an n-element table. */
std::size_t
streamChunkFor(std::size_t n)
{
    return std::min(n, zkphire::poly::currentStorePolicy().chunkElems);
}

/** Whether a commit over f should take the chunk-streaming MSM: the table
 *  is mapped (walking it all at once would fault every page into RSS) or
 *  at/above the ambient stream threshold, and bigger than one chunk. */
bool
shouldStreamCommit(const Mle &f)
{
    const zkphire::poly::StorePolicy pol =
        zkphire::poly::currentStorePolicy();
    return f.size() > pol.chunkElems &&
           (f.isMapped() || f.size() >= pol.thresholdElems);
}

/**
 * Commit already-materialized tables chunk by chunk: one MsmAccumulator
 * consumes consecutive windows of every column, and consumed windows of
 * mapped tables are dropped from RSS (the slab file keeps the data — later
 * readers fault it back). Group values equal ec::msmBatch over the whole
 * tables; commitments are affine-normalized, so the bytes match too.
 */
std::vector<G1Jacobian>
msmStreamTables(std::span<const Mle *const> polys,
                std::span<const G1Affine> points, ec::MsmStats *stats)
{
    const std::size_t n = points.size();
    const std::size_t m = polys.size();
    const std::size_t chunk = streamChunkFor(n);
    ec::MsmAccumulator acc(n, m, ec::currentMsmOptions(), stats, chunk);
    for (const Mle *p : polys)
        p->store().adviseSequential();
    std::vector<std::span<const Fr>> cols(m);
    for (std::size_t b = 0; b < n; b += chunk) {
        rt::checkCancel(); // chunk boundary: accumulator state is consistent
        const std::size_t e = std::min(n, b + chunk);
        for (std::size_t i = 0; i < m; ++i)
            cols[i] = polys[i]->evals().subspan(b, e - b);
        acc.add(cols, points.subspan(b, e - b));
        for (const Mle *p : polys)
            if (p->isMapped())
                p->store().releaseWindow(b, e);
    }
    return acc.finalize();
}

} // namespace

Commitment
commit(const Srs &srs, const Mle &f, ec::MsmStats *stats)
{
    const LevelBases &bases = srs.basesFor(f.numVars());
    if (shouldStreamCommit(f)) {
        const Mle *one[] = {&f};
        return Commitment{
            msmStreamTables(one, bases.suffix[0], stats)[0].toAffine()};
    }
    G1Jacobian c = ec::msmPippenger(f.evals(), bases.suffix[0], 0, stats);
    return Commitment{c.toAffine()};
}

Commitment
commitStreamed(const Srs &srs, unsigned mu, const ChunkProducer &produce,
               ec::MsmStats *stats)
{
    return std::move(commitBatchStreamed(
        srs, mu, std::span<const ChunkProducer>(&produce, 1), stats)[0]);
}

std::vector<Commitment>
commitBatchStreamed(const Srs &srs, unsigned mu,
                    std::span<const ChunkProducer> produce,
                    ec::MsmStats *stats)
{
    const std::size_t m = produce.size();
    std::vector<Commitment> out;
    out.reserve(m);
    if (m == 0)
        return out;
    const std::size_t n = std::size_t(1) << mu;
    const std::size_t chunk = streamChunkFor(n);
    const LevelBases &bases = srs.basesFor(mu);
    const std::span<const G1Affine> points = bases.suffix[0];
    ec::MsmAccumulator acc(n, m, ec::currentMsmOptions(), stats, chunk);

    // Double-buffer pipeline: a prefetch task fills window i+1 while this
    // thread recodes and buckets window i, overlapping table generation
    // with the MSM. The prefetch runs serially — the pool belongs to the
    // MSM side — and re-applies a snapshot of the ambient stream overrides,
    // which are thread-local and would not propagate into std::async.
    rt::Config snap;
    snap.threads = 1;
    snap.streamThreshold = rt::currentStreamThreshold();
    snap.streamChunk = rt::currentStreamChunk();
    std::vector<Fr> bufA(m * chunk), bufB(m * chunk);
    const auto fill = [&produce, &snap, m, chunk](std::vector<Fr> &buf,
                                                  std::size_t b,
                                                  std::size_t e) {
        rt::ScopedConfig scope(snap);
        rt::failpoint("chunk.producer");
        for (std::size_t i = 0; i < m; ++i)
            produce[i](b, e, buf.data() + i * chunk);
    };
    fill(bufA, 0, std::min(n, chunk));
    std::vector<std::span<const Fr>> cols(m);
    for (std::size_t b = 0; b < n; b += chunk) {
        // Chunk boundary. A throw here (or out of acc.add below) is safe
        // even with the prefetch in flight: next's destructor joins the
        // async task, so bufB never outlives its writer.
        rt::checkCancel();
        const std::size_t e = std::min(n, b + chunk);
        std::future<void> next;
        if (e < n)
            next = std::async(std::launch::async, [&fill, &bufB, e, n,
                                                   chunk] {
                fill(bufB, e, std::min(n, e + chunk));
            });
        for (std::size_t i = 0; i < m; ++i)
            cols[i] = std::span<const Fr>(bufA.data() + i * chunk, e - b);
        acc.add(cols, points.subspan(b, e - b));
        if (next.valid())
            next.get();
        bufA.swap(bufB);
    }
    for (const G1Jacobian &c : acc.finalize())
        out.push_back(Commitment{c.toAffine()});
    return out;
}

std::vector<Commitment>
commitBatch(const Srs &srs, std::span<const Mle *const> polys,
            ec::MsmStats *stats)
{
    std::vector<Commitment> out;
    out.reserve(polys.size());
    if (polys.empty())
        return out;
    // The multi-MSM needs one shared basis; a mixed-size family degrades
    // to per-polynomial commits (same results, no sharing) rather than
    // committing everything against polys[0]'s basis.
    const unsigned mu = polys[0]->numVars();
    for (const Mle *p : polys) {
        if (p->numVars() != mu) {
            for (const Mle *q : polys)
                out.push_back(commit(srs, *q, stats));
            return out;
        }
    }
    const LevelBases &bases = srs.basesFor(mu);
    bool stream = false;
    for (const Mle *p : polys)
        stream = stream || shouldStreamCommit(*p);
    if (stream) {
        for (const G1Jacobian &c :
             msmStreamTables(polys, bases.suffix[0], stats))
            out.push_back(Commitment{c.toAffine()});
        return out;
    }
    std::vector<std::span<const Fr>> cols;
    cols.reserve(polys.size());
    for (const Mle *p : polys)
        cols.push_back(p->evals());
    for (const G1Jacobian &c : ec::msmBatch(cols, bases.suffix[0],
                                            ec::currentMsmOptions(), stats))
        out.push_back(Commitment{c.toAffine()});
    return out;
}

std::vector<Commitment>
commitBatch(const Srs &srs, std::span<const Mle> polys, ec::MsmStats *stats)
{
    std::vector<const Mle *> ptrs;
    ptrs.reserve(polys.size());
    for (const Mle &p : polys)
        ptrs.push_back(&p);
    return commitBatch(srs, std::span<const Mle *const>(ptrs), stats);
}

OpeningProof
open(const Srs &srs, const Mle &poly, std::span<const Fr> z,
     ec::MsmStats *stats)
{
    const Mle *polys[] = {&poly};
    const std::span<const Fr> zs[] = {z};
    return std::move(openMany(srs, polys, zs, stats)[0]);
}

std::vector<OpeningProof>
openMany(const Srs &srs, std::span<const Mle *const> polys,
         std::span<const std::span<const Fr>> zs, ec::MsmStats *stats)
{
    const std::size_t m = polys.size();
    assert(zs.size() == m);
    std::vector<OpeningProof> proofs(m);
    if (m == 0)
        return proofs;
    const unsigned mu = polys[0]->numVars();
    if (m > 1) {
        // Level-zipping needs one variable count; mixed-size chains
        // degrade to independent openings (same proofs, no sharing).
        for (std::size_t i = 0; i < m; ++i) {
            if (polys[i]->numVars() != mu) {
                for (std::size_t j = 0; j < m; ++j)
                    proofs[j] = open(srs, *polys[j], zs[j], stats);
                return proofs;
            }
        }
    }
    const LevelBases &bases = srs.basesFor(mu);

    // Working copies, quotient buffers, and fold double buffers all come
    // from the ambient arena (installed by engine::ProverContext), so a
    // proof stream on one context reuses one set of allocations instead of
    // reallocating ~2 * 2^mu elements per proof.
    std::vector<Mle> cur;
    cur.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
        assert(zs[i].size() == mu && "opening point dimension mismatch");
        proofs[i].quotients.reserve(mu);
        FrTable t = zkphire::poly::arenaAcquire(polys[i]->size());
        t.assign(polys[i]->evals());
        cur.push_back(Mle(std::move(t)));
    }

    std::vector<FrTable> q(m);
    std::vector<FrTable> fold_scratch(m); // double buffers, reused
    std::vector<std::span<const Fr>> cols(m);
    for (unsigned k = 0; k < mu; ++k) {
        // q_k(X_{k+1}..) = cur(1, X..) - cur(0, X..): adjacent differences,
        // then ONE multi-MSM over the shared suffix basis for every chain.
        const std::size_t half = cur[0].size() / 2;
        for (std::size_t i = 0; i < m; ++i) {
            if (q[i].capacity() == 0)
                q[i] = zkphire::poly::arenaAcquire(half);
            else
                q[i].resize(half);
            const Mle &c = cur[i];
            FrTable &qi = q[i];
            rt::parallelFor(
                0, half,
                [&](std::size_t j) { qi[j] = c[2 * j + 1] - c[2 * j]; },
                /*grain=*/0, /*minGrain=*/1024);
            cols[i] = qi.span();
        }
        std::vector<G1Jacobian> pis =
            ec::msmBatch(cols, bases.suffix[k + 1], ec::currentMsmOptions(),
                         stats);
        for (std::size_t i = 0; i < m; ++i) {
            proofs[i].quotients.push_back(pis[i].toAffine());
            cur[i].fixFirstVarInPlace(zs[i][k], fold_scratch[i]);
        }
    }
    for (std::size_t i = 0; i < m; ++i) {
        zkphire::poly::arenaRelease(std::move(cur[i].store()));
        zkphire::poly::arenaRelease(std::move(q[i]));
        zkphire::poly::arenaRelease(std::move(fold_scratch[i]));
    }
    return proofs;
}

bool
verifyOpening(const Srs &srs, const Commitment &c, std::span<const Fr> z,
              const Fr &value, const OpeningProof &proof)
{
    const unsigned mu = unsigned(z.size());
    if (proof.quotients.size() != mu)
        return false;
    // C - value * G == Sum_k (tau_k - z_k) * pi_k, checked in G1 with the
    // simulation trapdoor tau (testing-only; production uses a pairing).
    G1Jacobian lhs = G1Jacobian::fromAffine(c.point)
                         .add(G1Jacobian::fromAffine(srs.generator())
                                  .mulScalar(value)
                                  .neg());
    G1Jacobian rhs = G1Jacobian::identity();
    for (unsigned k = 0; k < mu; ++k) {
        Fr coeff = srs.tau()[k] - z[k];
        rhs = rhs.add(
            G1Jacobian::fromAffine(proof.quotients[k]).mulScalar(coeff));
    }
    return lhs == rhs;
}

Mle
combineForBatchOpen(std::span<const Mle> polys, const Fr &rho)
{
    assert(!polys.empty());
    const unsigned mu = polys[0].numVars();
    // g = Sum_i rho^i f_i, combined entry-parallel: each chunk walks the
    // opened polynomials in claim order, so every entry sees the exact
    // serial accumulation sequence (bit-identical at any thread count)
    // while the chunks — the per-opening work — run concurrently.
    std::vector<Fr> powers(polys.size());
    Fr coeff = Fr::one();
    for (std::size_t i = 0; i < polys.size(); ++i) {
        assert(polys[i].numVars() == mu);
        powers[i] = coeff;
        coeff *= rho;
    }
    Mle g(mu);
    rt::parallelForChunks(
        0, g.size(),
        [&](std::size_t b, std::size_t e) {
            for (std::size_t i = 0; i < polys.size(); ++i) {
                const Mle &f = polys[i];
                const Fr c = powers[i];
                // Fused multiply-accumulate span over the unrolled field
                // kernels; rho^0 == 1 skips its multiply pass outright
                // (1 * x is exactly x in canonical Montgomery form).
                if (c.isOne())
                    ff::addVec(&g[b], &f[b], e - b);
                else
                    ff::addMulVec(&g[b], c, &f[b], e - b);
            }
        },
        /*grain=*/0, /*minGrain=*/1024);
    return g;
}

OpeningProof
batchOpen(const Srs &srs, std::span<const Mle> polys, std::span<const Fr> z,
          const Fr &rho, ec::MsmStats *stats)
{
    Mle g = combineForBatchOpen(polys, rho);
    return open(srs, g, z, stats);
}

bool
verifyBatchOpening(const Srs &srs, std::span<const Commitment> cs,
                   std::span<const Fr> z, std::span<const Fr> values,
                   const Fr &rho, const OpeningProof &proof)
{
    assert(cs.size() == values.size());
    // Combined commitment and value via linearity.
    G1Jacobian c = G1Jacobian::identity();
    Fr v = Fr::zero();
    Fr coeff = Fr::one();
    for (std::size_t i = 0; i < cs.size(); ++i) {
        c = c.add(G1Jacobian::fromAffine(cs[i].point).mulScalar(coeff));
        v += coeff * values[i];
        coeff *= rho;
    }
    return verifyOpening(srs, Commitment{c.toAffine()}, z, v, proof);
}

} // namespace zkphire::pcs
