/**
 * @file
 * Multilinear KZG (PST13) polynomial commitment scheme.
 *
 * Prover-side operations — Lagrange-basis commitment (one size-N MSM) and
 * per-variable quotient opening proofs (mu MSMs of halving sizes) — follow
 * the real protocol exactly; these are the MSMs zkPHIRE's MSM unit
 * accelerates in Witness Commitment, Wire Identity, and Polynomial Opening.
 * Verification checks the KZG identity
 *     C - f(z) * G == Sum_k (tau_k - z_k) * pi_k
 * in G1 using the SRS trapdoor (testing-only; see DESIGN.md substitutions)
 * instead of the pairing, which lives verifier-side and is never modeled by
 * the accelerator.
 */
#ifndef ZKPHIRE_PCS_MKZG_HPP
#define ZKPHIRE_PCS_MKZG_HPP

#include <span>
#include <vector>

#include "ec/msm.hpp"
#include "pcs/srs.hpp"
#include "poly/mle.hpp"

namespace zkphire::pcs {

using poly::Mle;

/** A commitment to one multilinear polynomial. */
struct Commitment {
    G1Affine point;
    bool operator==(const Commitment &o) const { return point == o.point; }
};

/** Opening proof: one quotient commitment per variable. */
struct OpeningProof {
    std::vector<G1Affine> quotients;
    std::size_t sizeBytes() const { return quotients.size() * 96; }
};

/** Commit to a multilinear polynomial (size-2^mu MSM). */
Commitment commit(const Srs &srs, const Mle &poly,
                  ec::MsmStats *stats = nullptr);

/**
 * Open poly at z: produce quotient commitments pi_k with
 * f(X) - f(z) = Sum_k (X_k - z_k) q_k(X_{k+1}..). Total MSM work ~2*2^mu.
 */
OpeningProof open(const Srs &srs, const Mle &poly, std::span<const Fr> z,
                  ec::MsmStats *stats = nullptr);

/**
 * Verify an opening claim f(z) == value against a commitment.
 * Testing-only trapdoor verification (see file comment).
 */
bool verifyOpening(const Srs &srs, const Commitment &c, std::span<const Fr> z,
                   const Fr &value, const OpeningProof &proof);

/**
 * Batched opening of several polynomials at ONE shared point (the situation
 * after OpenCheck): open Sum_i rho^i f_i with a single proof.
 */
OpeningProof batchOpen(const Srs &srs, std::span<const Mle> polys,
                       std::span<const Fr> z, const Fr &rho,
                       ec::MsmStats *stats = nullptr);

/** Verify a batched opening given per-polynomial commitments and values. */
bool verifyBatchOpening(const Srs &srs, std::span<const Commitment> cs,
                        std::span<const Fr> z, std::span<const Fr> values,
                        const Fr &rho, const OpeningProof &proof);

} // namespace zkphire::pcs

#endif // ZKPHIRE_PCS_MKZG_HPP
