/**
 * @file
 * Multilinear KZG (PST13) polynomial commitment scheme.
 *
 * Prover-side operations — Lagrange-basis commitment (one size-N MSM) and
 * per-variable quotient opening proofs (mu MSMs of halving sizes) — follow
 * the real protocol exactly; these are the MSMs zkPHIRE's MSM unit
 * accelerates in Witness Commitment, Wire Identity, and Polynomial Opening.
 * Verification checks the KZG identity
 *     C - f(z) * G == Sum_k (tau_k - z_k) * pi_k
 * in G1 using the SRS trapdoor (testing-only; see DESIGN.md substitutions)
 * instead of the pairing, which lives verifier-side and is never modeled by
 * the accelerator.
 */
#ifndef ZKPHIRE_PCS_MKZG_HPP
#define ZKPHIRE_PCS_MKZG_HPP

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "ec/msm.hpp"
#include "pcs/srs.hpp"
#include "poly/mle.hpp"

namespace zkphire::pcs {

using poly::Mle;

/** A commitment to one multilinear polynomial. */
struct Commitment {
    G1Affine point;
    bool operator==(const Commitment &o) const { return point == o.point; }
};

/** Opening proof: one quotient commitment per variable. */
struct OpeningProof {
    std::vector<G1Affine> quotients;
    std::size_t sizeBytes() const { return quotients.size() * 96; }
};

/**
 * Commit to a multilinear polynomial (size-2^mu MSM). Tables on the Mapped
 * backend — or at/above the ambient stream threshold — are committed by the
 * chunk-streaming path automatically: the MSM accumulates one stream chunk
 * of recoded buckets at a time and consumed pages of a mapped table are
 * released, so peak RSS is O(chunk) instead of O(2^mu). The commitment
 * bytes are identical either way.
 */
Commitment commit(const Srs &srs, const Mle &f, ec::MsmStats *stats = nullptr);

/**
 * Fills dst[0 .. end-begin) with entries [begin, end) of one column of
 * evaluations. commitStreamed calls it with consecutive, non-overlapping
 * [begin, end) windows in ascending order, from a prefetch thread that runs
 * concurrently with the MSM work on the previous window.
 */
using ChunkProducer =
    std::function<void(std::size_t begin, std::size_t end, Fr *dst)>;

/**
 * Commit to a 2^mu-evaluation polynomial produced chunk by chunk: the table
 * is never materialized. A double buffer overlaps producing window i+1 with
 * recoding/bucketing window i, so table generation and MSM window
 * accumulation pipeline. Equals commit() on the materialized table exactly.
 */
Commitment commitStreamed(const Srs &srs, unsigned mu,
                          const ChunkProducer &produce,
                          ec::MsmStats *stats = nullptr);

/** Multi-column commitStreamed: one producer per polynomial, one shared
 *  point walk per chunk (the streaming analogue of commitBatch). */
std::vector<Commitment>
commitBatchStreamed(const Srs &srs, unsigned mu,
                    std::span<const ChunkProducer> produce,
                    ec::MsmStats *stats = nullptr);

/**
 * Commit to several same-size polynomials with one multi-MSM
 * (ec::msmBatch) over the shared Lagrange basis: the k witness columns of
 * a HyperPlonk proof are recoded once and the basis points are walked
 * once per window for all of them, instead of k independent passes. Each
 * commitment equals the corresponding commit() result exactly.
 */
std::vector<Commitment> commitBatch(const Srs &srs,
                                    std::span<const Mle *const> polys,
                                    ec::MsmStats *stats = nullptr);
std::vector<Commitment> commitBatch(const Srs &srs, std::span<const Mle> polys,
                                    ec::MsmStats *stats = nullptr);

/**
 * Open poly at z: produce quotient commitments pi_k with
 * f(X) - f(z) = Sum_k (X_k - z_k) q_k(X_{k+1}..). Total MSM work ~2*2^mu.
 */
OpeningProof open(const Srs &srs, const Mle &poly, std::span<const Fr> z,
                  ec::MsmStats *stats = nullptr);

/**
 * Open several polynomials of the SAME variable count at (possibly
 * different) points, zipping the per-variable levels: level k commits
 * every opening's quotient with one multi-MSM over the shared suffix
 * basis, so the basis points are read once per level for all openings.
 * (HyperPlonk's own two chains have different variable counts — g has mu,
 * the product polynomial v has mu+1 — so they cannot ride this; the API
 * serves workloads that open several same-size polynomials, e.g. sharded
 * or multi-proof batches.) proofs[i] equals open(polys[i], zs[i]) exactly.
 */
std::vector<OpeningProof> openMany(const Srs &srs,
                                   std::span<const Mle *const> polys,
                                   std::span<const std::span<const Fr>> zs,
                                   ec::MsmStats *stats = nullptr);

/**
 * The rho-power linear combination Sum_i rho^i f_i that batchOpen commits
 * to; exposed so callers can combine once and open through openMany.
 */
Mle combineForBatchOpen(std::span<const Mle> polys, const Fr &rho);

/**
 * Verify an opening claim f(z) == value against a commitment.
 * Testing-only trapdoor verification (see file comment).
 */
bool verifyOpening(const Srs &srs, const Commitment &c, std::span<const Fr> z,
                   const Fr &value, const OpeningProof &proof);

/**
 * Batched opening of several polynomials at ONE shared point (the situation
 * after OpenCheck): open Sum_i rho^i f_i with a single proof.
 */
OpeningProof batchOpen(const Srs &srs, std::span<const Mle> polys,
                       std::span<const Fr> z, const Fr &rho,
                       ec::MsmStats *stats = nullptr);

/** Verify a batched opening given per-polynomial commitments and values. */
bool verifyBatchOpening(const Srs &srs, std::span<const Commitment> cs,
                        std::span<const Fr> z, std::span<const Fr> values,
                        const Fr &rho, const OpeningProof &proof);

} // namespace zkphire::pcs

#endif // ZKPHIRE_PCS_MKZG_HPP
